package core

import (
	"context"
	"fmt"
	"math/rand"

	"pprengine/internal/graph"
	"pprengine/internal/metrics"
	"pprengine/internal/pmap"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
	"pprengine/internal/wire"
)

// K-hop fanout sampling — the BFS-style mini-batch construction primitive
// (GraphSAGE) the paper's introduction lists alongside Random Walk and
// Personalized PageRank. Sampling happens server-side (one batched RPC per
// destination shard per hop), so responses carry only the sampled neighbor
// IDs instead of whole adjacency lists.

// SampleNeighborsLocal samples up to fanout distinct weighted out-neighbors
// for each listed core vertex of s.
func SampleNeighborsLocal(s *shard.Shard, loc *shard.Locator, locals []int32, fanout int32, seed int64) (*wire.SampleNResponse, error) {
	if fanout <= 0 {
		return nil, fmt.Errorf("core: fanout must be positive, got %d", fanout)
	}
	rng := rand.New(rand.NewSource(seed))
	resp := &wire.SampleNResponse{Indptr: make([]int32, 1, len(locals)+1)}
	for _, l := range locals {
		if err := s.CheckLocal(l); err != nil {
			return nil, err
		}
		vp := s.VertexProp(l)
		deg := vp.Degree()
		pick := func(j int) {
			resp.Locals = append(resp.Locals, vp.Locals[j])
			resp.Shards = append(resp.Shards, vp.Shards[j])
			resp.Globals = append(resp.Globals, int32(loc.Global(vp.Shards[j], vp.Locals[j])))
		}
		switch {
		case deg == 0:
			// No neighbors: empty row.
		case deg <= int(fanout):
			for j := 0; j < deg; j++ {
				pick(j)
			}
		default:
			// Weighted sampling without replacement via sequential
			// selection (A-Res would be overkill at GNN fanouts).
			chosen := make(map[int]bool, fanout)
			remaining := float64(vp.WDeg)
			for picked := int32(0); picked < fanout; picked++ {
				target := rng.Float64() * remaining
				acc := 0.0
				sel := -1
				for j := 0; j < deg; j++ {
					if chosen[j] {
						continue
					}
					acc += float64(vp.Weights[j])
					if acc >= target {
						sel = j
						break
					}
				}
				if sel == -1 { // numeric fallback: take the last unchosen
					for j := deg - 1; j >= 0; j-- {
						if !chosen[j] {
							sel = j
							break
						}
					}
				}
				chosen[sel] = true
				remaining -= float64(vp.Weights[sel])
				pick(sel)
			}
		}
		resp.Indptr = append(resp.Indptr, int32(len(resp.Locals)))
	}
	if len(locals) == 0 {
		resp.Indptr = []int32{}
	}
	return resp, nil
}

// SampleNFuture is the future for a SampleNeighbors call.
type SampleNFuture struct {
	resp     *wire.SampleNResponse
	err      error
	fut      respFuture
	dstShard int32
}

// Wait blocks for the sampled rows.
func (f *SampleNFuture) Wait() (*wire.SampleNResponse, error) {
	return f.WaitCtx(context.Background())
}

// WaitCtx is Wait bounded by a context.
func (f *SampleNFuture) WaitCtx(ctx context.Context) (*wire.SampleNResponse, error) {
	if f.resp != nil || f.err != nil {
		return f.resp, f.err
	}
	payload, err := f.fut.WaitCtx(ctx)
	if err != nil {
		f.err = wrapPeerErr(f.dstShard, err)
		return nil, f.err
	}
	f.resp, f.err = wire.DecodeSampleNResponse(payload)
	f.fut.Release() // response copied into f.resp by the decode
	return f.resp, f.err
}

// SampleNeighbors samples up to fanout neighbors for each core vertex of
// dstShard, locally via shared memory or remotely via one batched RPC
// issued under ctx — through the replica router when replication is on,
// carrying ctx's trace context either way.
func (g *DistGraphStorage) SampleNeighbors(ctx context.Context, dstShard int32, locals []int32, fanout int32, seed int64) *SampleNFuture {
	if dstShard == g.ShardID {
		resp, err := SampleNeighborsLocal(g.Local, g.Locator, locals, fanout, seed)
		return &SampleNFuture{resp: resp, err: err}
	}
	if g.Clients[dstShard] == nil && g.Router == nil {
		return &SampleNFuture{err: fmt.Errorf("core: no client for shard %d", dstShard)}
	}
	payload := wire.EncodeSampleNRequest(&wire.SampleNRequest{Seed: seed, Fanout: fanout, Locals: locals})
	return &SampleNFuture{dstShard: dstShard, fut: g.call(ctx, dstShard, rpc.MethodSampleNeighbors, payload)}
}

// KHopResult is a sampled computation graph: the union of sampled vertices
// (global IDs) and the sampled directed edges (child -> parent hop order,
// i.e. from sampled neighbor to the vertex it was sampled for).
type KHopResult struct {
	Roots []int32 // global IDs of the roots
	Nodes []int32 // all distinct global IDs, roots first
	// Edge lists over Nodes indices.
	EdgeSrc []int32
	EdgeDst []int32
	// HopOf[i] is the hop at which Nodes[i] first appeared (0 = root).
	HopOf []int32
}

// RunKHopSample builds a GraphSAGE-style sampled neighborhood: starting
// from the given root vertices of g's shard, each hop h samples up to
// fanouts[h] neighbors of every frontier vertex with one batched request
// per destination shard. ctx bounds the whole sample: it is checked before
// every hop and on every remote wait.
func RunKHopSample(ctx context.Context, g *DistGraphStorage, rootLocals []int32, fanouts []int, seed int64, bd *metrics.Breakdown) (*KHopResult, error) {
	res := &KHopResult{}
	index := map[pmap.Key]int32{} // node key -> index into res.Nodes
	addNode := func(k pmap.Key, global int32, hop int32) int32 {
		if i, ok := index[k]; ok {
			return i
		}
		i := int32(len(res.Nodes))
		index[k] = i
		res.Nodes = append(res.Nodes, global)
		res.HopOf = append(res.HopOf, hop)
		return i
	}
	type fnode struct {
		key pmap.Key
		idx int32
	}
	var frontier []fnode
	for _, l := range rootLocals {
		if err := g.Local.CheckLocal(l); err != nil {
			return nil, err
		}
		gid := int32(g.Locator.Global(g.ShardID, l))
		res.Roots = append(res.Roots, gid)
		k := pmap.Key{Local: l, Shard: g.ShardID}
		idx := addNode(k, gid, 0)
		frontier = append(frontier, fnode{k, idx})
	}
	byShard := make([][]int32, g.NumShards)
	idxByShard := make([][]int32, g.NumShards)
	for hop, fanout := range fanouts {
		if len(frontier) == 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for j := range byShard {
			byShard[j] = byShard[j][:0]
			idxByShard[j] = idxByShard[j][:0]
		}
		for _, f := range frontier {
			byShard[f.key.Shard] = append(byShard[f.key.Shard], f.key.Local)
			idxByShard[f.key.Shard] = append(idxByShard[f.key.Shard], f.idx)
		}
		futs := make([]*SampleNFuture, g.NumShards)
		stopIssue := bd.Start(metrics.PhaseRemoteFetch)
		for j := int32(0); j < g.NumShards; j++ {
			if j == g.ShardID || len(byShard[j]) == 0 {
				continue
			}
			futs[j] = g.SampleNeighbors(ctx, j, byShard[j], int32(fanout), seed+int64(hop*101+int(j)))
		}
		stopIssue()
		if len(byShard[g.ShardID]) > 0 {
			stop := bd.Start(metrics.PhaseLocalFetch)
			futs[g.ShardID] = g.SampleNeighbors(ctx, g.ShardID, byShard[g.ShardID], int32(fanout), seed+int64(hop*101+int(g.ShardID)))
			stop()
		}
		var next []fnode
		for j := int32(0); j < g.NumShards; j++ {
			if futs[j] == nil {
				continue
			}
			phase := metrics.PhaseRemoteFetch
			if j == g.ShardID {
				phase = metrics.PhaseLocalFetch
			}
			var resp *wire.SampleNResponse
			var err error
			bd.Time(phase, func() { resp, err = futs[j].WaitCtx(ctx) })
			if err != nil {
				return nil, fmt.Errorf("core: k-hop hop %d shard %d: %w", hop, j, err)
			}
			if resp.NumRows() != len(byShard[j]) {
				return nil, fmt.Errorf("core: k-hop response size mismatch")
			}
			for row := 0; row < resp.NumRows(); row++ {
				parentIdx := idxByShard[j][row]
				locals, shards, globals := resp.Row(row)
				for x := range locals {
					k := pmap.Key{Local: locals[x], Shard: shards[x]}
					_, existed := index[k]
					childIdx := addNode(k, globals[x], int32(hop+1))
					res.EdgeSrc = append(res.EdgeSrc, childIdx)
					res.EdgeDst = append(res.EdgeDst, parentIdx)
					if !existed {
						next = append(next, fnode{k, childIdx})
					}
				}
			}
		}
		frontier = next
	}
	return res, nil
}

// Subgraph converts the sampled computation graph into a graph.Graph over
// its node indices (unit weights), for downstream model code.
func (r *KHopResult) Subgraph() (*graph.Graph, error) {
	edges := make([]graph.Edge, len(r.EdgeSrc))
	for i := range r.EdgeSrc {
		edges[i] = graph.Edge{Src: r.EdgeSrc[i], Dst: r.EdgeDst[i], Weight: 1}
	}
	return graph.FromEdges(len(r.Nodes), edges)
}
