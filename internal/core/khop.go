package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"pprengine/internal/graph"
	"pprengine/internal/mem"
	"pprengine/internal/metrics"
	"pprengine/internal/pmap"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
	"pprengine/internal/wire"
)

// K-hop fanout sampling — the BFS-style mini-batch construction primitive
// (GraphSAGE) the paper's introduction lists alongside Random Walk and
// Personalized PageRank. Sampling happens server-side (one batched RPC per
// destination shard per hop), so responses carry only the sampled neighbor
// IDs instead of whole adjacency lists.

// sampleScratch is the reusable per-call state of the weighted
// without-replacement sampler: mark[j] == epoch means neighbor j of the
// current vertex is already chosen. Bumping the epoch "clears" the marks in
// O(1); the array is only memcleared on the rare epoch wraparound.
type sampleScratch struct {
	mark  []int32
	epoch int32
}

// next prepares the scratch for a vertex of degree deg and returns the epoch.
func (s *sampleScratch) next(deg int) int32 {
	if len(s.mark) < deg {
		grown := make([]int32, deg+deg/2)
		copy(grown, s.mark)
		s.mark = grown
	}
	s.epoch++
	if s.epoch <= 0 { // wraparound: stale marks could collide, clear them
		clear(s.mark)
		s.epoch = 1
	}
	return s.epoch
}

var sampleScratchPool = sync.Pool{New: func() any { return &sampleScratch{} }}

// rngPool recycles math/rand generators: rand.NewSource commits ~5KB of
// state per call, which dominated the sampling handler's allocations.
// Re-seeding a pooled generator produces the exact sequence a fresh
// rand.New(rand.NewSource(seed)) would, so pooling changes no sample.
var rngPool = sync.Pool{New: func() any { return rand.New(rand.NewSource(1)) }}

func getRNG(seed int64) *rand.Rand {
	r := rngPool.Get().(*rand.Rand)
	r.Seed(seed)
	return r
}

func putRNG(r *rand.Rand) { rngPool.Put(r) }

// sampleRow runs the weighted without-replacement selection for one vertex,
// appending each selected neighbor index via pick. The rng draw sequence is
// exactly one Float64 per selection, identical across the legacy and arena
// paths (bitwise-equal samples for a given seed).
func sampleRow(vp shard.VertexProp, fanout int32, rng *rand.Rand, sc *sampleScratch, pick func(j int)) {
	deg := vp.Degree()
	epoch := sc.next(deg)
	mark := sc.mark[:deg]
	remaining := float64(vp.WDeg)
	for picked := int32(0); picked < fanout; picked++ {
		target := rng.Float64() * remaining
		acc := 0.0
		sel := -1
		for j := 0; j < deg; j++ {
			if mark[j] == epoch {
				continue
			}
			acc += float64(vp.Weights[j])
			if acc >= target {
				sel = j
				break
			}
		}
		if sel == -1 { // numeric fallback: take the last unchosen
			for j := deg - 1; j >= 0; j-- {
				if mark[j] != epoch {
					sel = j
					break
				}
			}
		}
		mark[sel] = epoch
		remaining -= float64(vp.Weights[sel])
		pick(sel)
	}
}

// SampleNeighborsLocal samples up to fanout distinct weighted out-neighbors
// for each listed core vertex of s. This is the legacy copy path — fresh rng
// state, per-vertex chosen map, append-grown response — kept verbatim as the
// pre-pooling baseline behind SetSampleZeroCopy(false); the hot path is
// SampleNeighborsInto. Both consume the rng identically, so for one seed the
// two produce bitwise-equal samples.
func SampleNeighborsLocal(s *shard.Shard, loc *shard.Locator, locals []int32, fanout int32, seed int64) (*wire.SampleNResponse, error) {
	if fanout <= 0 {
		return nil, fmt.Errorf("core: fanout must be positive, got %d", fanout)
	}
	rng := rand.New(rand.NewSource(seed))
	resp := &wire.SampleNResponse{Indptr: make([]int32, 1, len(locals)+1)}
	for _, l := range locals {
		if err := s.CheckLocal(l); err != nil {
			return nil, err
		}
		vp := s.VertexProp(l)
		deg := vp.Degree()
		pick := func(j int) {
			resp.Locals = append(resp.Locals, vp.Locals[j])
			resp.Shards = append(resp.Shards, vp.Shards[j])
			resp.Globals = append(resp.Globals, int32(loc.Global(vp.Shards[j], vp.Locals[j])))
		}
		switch {
		case deg == 0:
			// No neighbors: empty row.
		case deg <= int(fanout):
			for j := 0; j < deg; j++ {
				pick(j)
			}
		default:
			// Weighted sampling without replacement via sequential
			// selection (A-Res would be overkill at GNN fanouts).
			chosen := make(map[int]bool, fanout)
			remaining := float64(vp.WDeg)
			for picked := int32(0); picked < fanout; picked++ {
				target := rng.Float64() * remaining
				acc := 0.0
				sel := -1
				for j := 0; j < deg; j++ {
					if chosen[j] {
						continue
					}
					acc += float64(vp.Weights[j])
					if acc >= target {
						sel = j
						break
					}
				}
				if sel == -1 { // numeric fallback: take the last unchosen
					for j := deg - 1; j >= 0; j-- {
						if !chosen[j] {
							sel = j
							break
						}
					}
				}
				chosen[sel] = true
				remaining -= float64(vp.Weights[sel])
				pick(sel)
			}
		}
		resp.Indptr = append(resp.Indptr, int32(len(resp.Locals)))
	}
	if len(locals) == 0 {
		resp.Indptr = []int32{}
	}
	return resp, nil
}

// SampleNeighborsInto is SampleNeighborsLocal with exact-size arrays carved
// from a (or the heap when a is nil): a sizing pre-pass computes every row's
// sample count — min(degree, fanout), no rng draws — so the fill pass writes
// into final-size arrays with no append growth. The rng consumption matches
// SampleNeighborsLocal draw for draw, so both produce bitwise-identical
// samples for a given seed. resp is a view into a: valid until the arena is
// reset.
func SampleNeighborsInto(s *shard.Shard, loc *shard.Locator, locals []int32, fanout int32, seed int64, a *mem.Arena, resp *wire.SampleNResponse) error {
	if fanout <= 0 {
		return fmt.Errorf("core: fanout must be positive, got %d", fanout)
	}
	entries := 0
	for _, l := range locals {
		if err := s.CheckLocal(l); err != nil {
			return err
		}
		if deg := s.VertexProp(l).Degree(); deg > int(fanout) {
			entries += int(fanout)
		} else {
			entries += deg
		}
	}
	if len(locals) > 0 {
		resp.Indptr = arenaI32(a, len(locals)+1)
	} else {
		resp.Indptr = []int32{}
	}
	resp.Locals = arenaI32(a, entries)
	resp.Shards = arenaI32(a, entries)
	resp.Globals = arenaI32(a, entries)

	rng := getRNG(seed)
	defer putRNG(rng)
	sc := sampleScratchPool.Get().(*sampleScratch)
	defer sampleScratchPool.Put(sc)
	off := 0
	for i, l := range locals {
		vp := s.VertexProp(l)
		deg := vp.Degree()
		pick := func(j int) {
			resp.Locals[off] = vp.Locals[j]
			resp.Shards[off] = vp.Shards[j]
			resp.Globals[off] = int32(loc.Global(vp.Shards[j], vp.Locals[j]))
			off++
		}
		switch {
		case deg == 0:
		case deg <= int(fanout):
			for j := 0; j < deg; j++ {
				pick(j)
			}
		default:
			sampleRow(vp, fanout, rng, sc, pick)
		}
		resp.Indptr[i+1] = int32(off)
	}
	return nil
}

// SampleNFuture is the future for a SampleNeighbors call.
type SampleNFuture struct {
	resp     *wire.SampleNResponse
	respVal  wire.SampleNResponse // zero-copy decode target (avoids a heap alloc)
	err      error
	fut      respFuture
	dstShard int32

	// zeroCopy selects the view decoder; release returns the pooled payload
	// buffer / decode arena backing resp, set by the wait path that decoded
	// it (mirrors InfoFuture).
	zeroCopy    bool
	release     func()
	releaseOnce sync.Once
}

// Release hands back the pooled buffer (or decode arena) backing this
// future's response. Call it only after every read of the response returned
// by Wait/WaitCtx — afterwards the rows may alias recycled memory.
// Idempotent and nil-safe; futures whose response owns its memory
// (copy-decoded responses, legacy local sampling) make it a no-op.
func (f *SampleNFuture) Release() {
	if f == nil || f.release == nil {
		return
	}
	f.releaseOnce.Do(f.release)
}

// Wait blocks for the sampled rows.
func (f *SampleNFuture) Wait() (*wire.SampleNResponse, error) {
	return f.WaitCtx(context.Background())
}

// WaitCtx is Wait bounded by a context.
func (f *SampleNFuture) WaitCtx(ctx context.Context) (*wire.SampleNResponse, error) {
	if f.resp != nil || f.err != nil {
		return f.resp, f.err
	}
	payload, err := f.fut.WaitCtx(ctx)
	if err != nil {
		f.err = wrapPeerErr(f.dstShard, err)
		return nil, f.err
	}
	if f.zeroCopy {
		// The decoded rows alias the pooled response payload when the host
		// allows it (the buffer goes home at f.Release); otherwise they land
		// in a pooled arena, recycled at f.Release, and the payload buffer
		// goes home right away.
		if wire.CanAlias(payload) {
			if f.err = wire.DecodeSampleNResponseView(payload, nil, &f.respVal); f.err != nil {
				f.fut.Release()
				return nil, f.err
			}
			f.release = f.fut.Release
		} else {
			arena := mem.GetArena()
			f.err = wire.DecodeSampleNResponseView(payload, arena, &f.respVal)
			f.fut.Release()
			if f.err != nil {
				mem.PutArena(arena)
				return nil, f.err
			}
			f.release = func() { mem.PutArena(arena) }
		}
		f.resp = &f.respVal
		return f.resp, nil
	}
	f.resp, f.err = wire.DecodeSampleNResponse(payload)
	f.fut.Release() // response copied into f.resp by the decode
	return f.resp, f.err
}

// SampleNeighbors samples up to fanout neighbors for each core vertex of
// dstShard, locally via shared memory or remotely via one batched RPC
// issued under ctx — through the replica router when replication is on,
// carrying ctx's trace context either way.
func (g *DistGraphStorage) SampleNeighbors(ctx context.Context, dstShard int32, locals []int32, fanout int32, seed int64) *SampleNFuture {
	if dstShard == g.ShardID {
		if g.zeroCopySamples() {
			// Shared-memory fast path: exact-size rows in a pooled arena,
			// recycled at Release once the caller consumed them.
			f := &SampleNFuture{}
			arena := mem.GetArena()
			if err := SampleNeighborsInto(g.Local, g.Locator, locals, fanout, seed, arena, &f.respVal); err != nil {
				mem.PutArena(arena)
				f.err = err
				return f
			}
			f.resp = &f.respVal
			f.release = func() { mem.PutArena(arena) }
			return f
		}
		resp, err := SampleNeighborsLocal(g.Local, g.Locator, locals, fanout, seed)
		return &SampleNFuture{resp: resp, err: err}
	}
	if g.Clients[dstShard] == nil && g.Router == nil {
		return &SampleNFuture{err: fmt.Errorf("core: no client for shard %d", dstShard)}
	}
	payload := wire.EncodeSampleNRequest(&wire.SampleNRequest{Seed: seed, Fanout: fanout, Locals: locals})
	return &SampleNFuture{dstShard: dstShard, zeroCopy: g.zeroCopySamples(),
		fut: g.call(ctx, dstShard, rpc.MethodSampleNeighbors, payload)}
}

// KHopResult is a sampled computation graph: the union of sampled vertices
// (global IDs) and the sampled directed edges (child -> parent hop order,
// i.e. from sampled neighbor to the vertex it was sampled for).
type KHopResult struct {
	Roots []int32 // global IDs of the roots
	Nodes []int32 // all distinct global IDs, roots first
	// Edge lists over Nodes indices.
	EdgeSrc []int32
	EdgeDst []int32
	// HopOf[i] is the hop at which Nodes[i] first appeared (0 = root).
	HopOf []int32
}

// fnode is one frontier entry: a deduplicated node key plus its index into
// the result's node list.
type fnode struct {
	key pmap.Key
	idx int32
}

// KHopSampler holds the reusable client-side state of k-hop sampling: the
// node-dedup index, the frontier double-buffer, the per-shard request
// batches, and the growing node/edge accumulators. A sampler amortizes those
// allocations across calls — each Run clears (not frees) the state, so a warm
// sampler allocates only the exact-size result it returns plus the per-shard
// request/response traffic. A sampler is NOT safe for concurrent use; give
// each sampling goroutine its own.
type KHopSampler struct {
	index          map[pmap.Key]int32 // node key -> index into nodes
	frontier, next []fnode
	byShard        [][]int32
	idxByShard     [][]int32
	futs           []*SampleNFuture
	// Result accumulators: appended during the walk, copied exact-size into
	// the returned KHopResult so the scratch capacity survives the call.
	nodes, hopOf, edgeSrc, edgeDst []int32
}

// NewKHopSampler returns an empty sampler. State is sized lazily on first
// Run, so a sampler is cheap to hold per worker.
func NewKHopSampler() *KHopSampler {
	return &KHopSampler{index: make(map[pmap.Key]int32)}
}

// RunKHopSample builds a GraphSAGE-style sampled neighborhood: starting
// from the given root vertices of g's shard, each hop h samples up to
// fanouts[h] neighbors of every frontier vertex with one batched request
// per destination shard. ctx bounds the whole sample: it is checked before
// every hop and on every remote wait.
//
// One-shot convenience over a fresh KHopSampler; callers sampling in a loop
// (mini-batch training, the serving pipeline) should hold a sampler and call
// its Run to reuse the dedup index and scratch across batches.
func RunKHopSample(ctx context.Context, g *DistGraphStorage, rootLocals []int32, fanouts []int, seed int64, bd *metrics.Breakdown) (*KHopResult, error) {
	return NewKHopSampler().Run(ctx, g, rootLocals, fanouts, seed, bd)
}

// Run performs one k-hop sample, reusing the sampler's state. See
// RunKHopSample for semantics.
func (s *KHopSampler) Run(ctx context.Context, g *DistGraphStorage, rootLocals []int32, fanouts []int, seed int64, bd *metrics.Breakdown) (*KHopResult, error) {
	clear(s.index) // keeps the buckets: warm calls insert without rehashing
	s.nodes, s.hopOf = s.nodes[:0], s.hopOf[:0]
	s.edgeSrc, s.edgeDst = s.edgeSrc[:0], s.edgeDst[:0]
	s.frontier = s.frontier[:0]
	if len(s.byShard) < int(g.NumShards) {
		s.byShard = make([][]int32, g.NumShards)
		s.idxByShard = make([][]int32, g.NumShards)
		s.futs = make([]*SampleNFuture, g.NumShards)
	}
	addNode := func(k pmap.Key, global int32, hop int32) int32 {
		if i, ok := s.index[k]; ok {
			return i
		}
		i := int32(len(s.nodes))
		s.index[k] = i
		s.nodes = append(s.nodes, global)
		s.hopOf = append(s.hopOf, hop)
		return i
	}
	roots := make([]int32, 0, len(rootLocals))
	for _, l := range rootLocals {
		if err := g.Local.CheckLocal(l); err != nil {
			return nil, err
		}
		gid := int32(g.Locator.Global(g.ShardID, l))
		roots = append(roots, gid)
		k := pmap.Key{Local: l, Shard: g.ShardID}
		idx := addNode(k, gid, 0)
		s.frontier = append(s.frontier, fnode{k, idx})
	}
	byShard, idxByShard, futs := s.byShard, s.idxByShard, s.futs
	// releaseAll returns every outstanding pooled response on early exits;
	// the happy path releases each future right after consuming its rows.
	releaseAll := func() {
		for _, f := range futs {
			f.Release()
		}
	}
	for hop, fanout := range fanouts {
		if len(s.frontier) == 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for j := range byShard {
			byShard[j] = byShard[j][:0]
			idxByShard[j] = idxByShard[j][:0]
			futs[j] = nil
		}
		for _, f := range s.frontier {
			byShard[f.key.Shard] = append(byShard[f.key.Shard], f.key.Local)
			idxByShard[f.key.Shard] = append(idxByShard[f.key.Shard], f.idx)
		}
		stopIssue := bd.Start(metrics.PhaseRemoteFetch)
		for j := int32(0); j < g.NumShards; j++ {
			if j == g.ShardID || len(byShard[j]) == 0 {
				continue
			}
			futs[j] = g.SampleNeighbors(ctx, j, byShard[j], int32(fanout), seed+int64(hop*101+int(j)))
		}
		stopIssue()
		if len(byShard[g.ShardID]) > 0 {
			stop := bd.Start(metrics.PhaseLocalFetch)
			futs[g.ShardID] = g.SampleNeighbors(ctx, g.ShardID, byShard[g.ShardID], int32(fanout), seed+int64(hop*101+int(g.ShardID)))
			stop()
		}
		s.next = s.next[:0]
		for j := int32(0); j < g.NumShards; j++ {
			if futs[j] == nil {
				continue
			}
			phase := metrics.PhaseRemoteFetch
			if j == g.ShardID {
				phase = metrics.PhaseLocalFetch
			}
			var resp *wire.SampleNResponse
			var err error
			bd.Time(phase, func() { resp, err = futs[j].WaitCtx(ctx) })
			if err != nil {
				releaseAll()
				return nil, fmt.Errorf("core: k-hop hop %d shard %d: %w", hop, j, err)
			}
			if resp.NumRows() != len(byShard[j]) {
				releaseAll()
				return nil, fmt.Errorf("core: k-hop response size mismatch")
			}
			for row := 0; row < resp.NumRows(); row++ {
				parentIdx := idxByShard[j][row]
				locals, shards, globals := resp.Row(row)
				for x := range locals {
					k := pmap.Key{Local: locals[x], Shard: shards[x]}
					_, existed := s.index[k]
					childIdx := addNode(k, globals[x], int32(hop+1))
					s.edgeSrc = append(s.edgeSrc, childIdx)
					s.edgeDst = append(s.edgeDst, parentIdx)
					if !existed {
						s.next = append(s.next, fnode{k, childIdx})
					}
				}
			}
			// Everything kept was copied into the accumulators/next; the
			// pooled response memory goes home before the next shard's rows
			// are consumed.
			futs[j].Release()
		}
		s.frontier, s.next = s.next, s.frontier
	}
	// Exact-size copies: the result owns its memory (callers retain it
	// arbitrarily long), while the sampler keeps the grown scratch.
	return &KHopResult{
		Roots:   roots,
		Nodes:   append(make([]int32, 0, len(s.nodes)), s.nodes...),
		HopOf:   append(make([]int32, 0, len(s.hopOf)), s.hopOf...),
		EdgeSrc: append(make([]int32, 0, len(s.edgeSrc)), s.edgeSrc...),
		EdgeDst: append(make([]int32, 0, len(s.edgeDst)), s.edgeDst...),
	}, nil
}

// Subgraph converts the sampled computation graph into a graph.Graph over
// its node indices (unit weights), for downstream model code.
func (r *KHopResult) Subgraph() (*graph.Graph, error) {
	edges := make([]graph.Edge, len(r.EdgeSrc))
	for i := range r.EdgeSrc {
		edges[i] = graph.Edge{Src: r.EdgeSrc[i], Dst: r.EdgeDst[i], Weight: 1}
	}
	return graph.FromEdges(len(r.Nodes), edges)
}
