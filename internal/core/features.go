package core

import (
	"context"
	"fmt"
	"sync"

	"pprengine/internal/agg"
	"pprengine/internal/cache"
	"pprengine/internal/obs"
	"pprengine/internal/rpc"
	"pprengine/internal/wire"
)

// Feature access for the GNN serving path (§4.5): every shard's storage
// server can host a row-major feature block for its core vertices; compute
// processes slice features for mini-batch subgraphs through the same
// local/remote split as neighbor fetches ("slices corresponding features
// from a cross-machine feature store"). Remote fetches ride the full
// transport stack — replica routing, the machine-wide feature cache with
// PPR-mass admission, cross-query flush aggregation, and the zero-copy
// pooled-frame path — exactly like neighbor fetches do.

// AttachFeatures registers the feature block on the server side.
func (ss *StorageServer) AttachFeatures(dim int, feats []float32) error {
	if len(feats) != ss.Shard.NumCore()*dim {
		return fmt.Errorf("core: feature block has %d floats, want %d", len(feats), ss.Shard.NumCore()*dim)
	}
	ss.Features = feats
	ss.FeatureDim = dim
	return nil
}

// AttachLocalFeatures gives a compute process shared-memory access to its
// machine's feature block.
func (g *DistGraphStorage) AttachLocalFeatures(dim int, feats []float32) {
	g.LocalFeatures = feats
	g.FeatureDim = dim
}

// FeatureFuture resolves to a row-major [len(locals) x dim] feature block.
type FeatureFuture struct {
	feats []float32
	dim   int
	err   error

	fut      respFuture // direct or routed uncached path
	dstShard int32
	zeroCopy bool

	// aggTicket is set when the fetch (or, with the cache, its leader rows)
	// went through the feature-fetch aggregator; for a cached fetch it only
	// carries the wire accounting (the flights resolve the rows).
	aggTicket *agg.FeatTicket

	// cached is set when the fetch went through the feature cache.
	cached *cachedFeatFetch

	// Row accounting, mirroring InfoFuture's: remoteRows are the rows this
	// future requests over RPC (flight-leader rows only, with the cache);
	// rpcReqs/reqBytes are known at issue time on the non-aggregated paths.
	remoteRows     int64
	cacheHits      int64
	cacheCoalesced int64
	rpcReqs        int64
	reqBytes       int64

	tr *obs.Tracer
	sc obs.SpanContext

	release     func()
	releaseOnce sync.Once
}

// Release hands back the pooled response buffer backing this future's
// feature block (zero-copy remote fetches and aggregated flush shares).
// Call it only after every read of the slice returned by Wait/WaitCtx.
// Idempotent and nil-safe; local fetches, cache-assembled blocks, and
// copy-decoded responses make it a no-op.
func (f *FeatureFuture) Release() {
	if f == nil || f.release == nil {
		return
	}
	f.releaseOnce.Do(f.release)
}

// RemoteRows returns the rows this future requests over RPC (with the
// cache: flight-leader rows only).
func (f *FeatureFuture) RemoteRows() int64 { return f.remoteRows }

// CacheHits returns the rows served from the feature cache.
func (f *FeatureFuture) CacheHits() int64 { return f.cacheHits }

// CacheCoalesced returns the rows that joined another fetch's flight.
func (f *FeatureFuture) CacheCoalesced() int64 { return f.cacheCoalesced }

// RPCRequests returns the wire requests attributed to this fetch, with the
// same opener-charged rule as InfoFuture.RPCRequests for aggregated paths.
func (f *FeatureFuture) RPCRequests() int64 {
	if f.aggTicket != nil {
		r, _ := f.aggTicket.Accounting()
		return r
	}
	return f.rpcReqs
}

// RequestBytes returns the request payload bytes attributed to this fetch.
func (f *FeatureFuture) RequestBytes() int64 {
	if f.aggTicket != nil {
		_, b := f.aggTicket.Accounting()
		return b
	}
	return f.reqBytes
}

// Wait blocks for the block.
func (f *FeatureFuture) Wait() ([]float32, int, error) {
	return f.WaitCtx(context.Background())
}

// WaitCtx is Wait bounded by a context.
func (f *FeatureFuture) WaitCtx(ctx context.Context) ([]float32, int, error) {
	if f.feats != nil || f.err != nil {
		return f.feats, f.dim, f.err
	}
	if f.cached != nil {
		return f.waitCached(ctx)
	}
	if f.aggTicket != nil {
		feats, dim, err := f.aggTicket.Wait(ctx)
		if err != nil {
			f.err = wrapPeerErr(f.dstShard, wrapFeatureErr(err))
			return nil, 0, f.err
		}
		f.feats, f.dim = feats, dim
		// This ticket's share of the flush's pooled payload goes home at
		// f.Release, once the consumer copied the rows out.
		f.release = f.aggTicket.Release
		return f.feats, f.dim, nil
	}
	payload, err := f.fut.WaitCtx(ctx)
	if err != nil {
		f.err = wrapPeerErr(f.dstShard, wrapFeatureErr(err))
		return nil, 0, f.err
	}
	if f.zeroCopy {
		// The decoded block aliases the pooled response payload when the
		// host allows it; the buffer goes home at f.Release. A misaligned
		// payload falls back to a heap copy inside the view decoder, so the
		// buffer can go home immediately.
		aliased := wire.CanAlias(payload)
		f.dim, f.feats, f.err = wire.DecodeFeatureResponseView(payload)
		if aliased && f.err == nil {
			f.release = f.fut.Release
		} else {
			f.fut.Release()
		}
	} else {
		f.dim, f.feats, f.err = wire.DecodeFeatureResponse(payload)
		f.fut.Release() // block copied onto the heap by the decode
	}
	if f.err != nil {
		f.err = wrapPeerErr(f.dstShard, f.err)
		return nil, 0, f.err
	}
	return f.feats, f.dim, nil
}

// FetchFeatures gathers feature rows for core vertices of dstShard. Remote
// requests are issued under ctx (through the replica router when
// replication is on). Equivalent to FetchFeaturesMass with no mass signal.
func (g *DistGraphStorage) FetchFeatures(ctx context.Context, dstShard int32, locals []int32) *FeatureFuture {
	return g.FetchFeaturesMass(ctx, dstShard, locals, nil)
}

// FetchFeaturesMass is FetchFeatures carrying each requested row's PPR mass
// — the admission signal for the feature cache: a fetched row is cached
// only when its mass (the highest seen across reserving queries) clears
// Config.FeatAdmitMass. mass may be nil (rows carry mass 0) and is
// otherwise indexed like locals.
func (g *DistGraphStorage) FetchFeaturesMass(ctx context.Context, dstShard int32, locals []int32, mass []float64) *FeatureFuture {
	if dstShard == g.ShardID {
		if g.LocalFeatures == nil {
			return &FeatureFuture{err: fmt.Errorf("core: shard %d: %w", g.ShardID, ErrNoFeatureStore)}
		}
		d := g.FeatureDim
		out := make([]float32, 0, len(locals)*d)
		for _, l := range locals {
			if err := g.Local.CheckLocal(l); err != nil {
				return &FeatureFuture{err: err}
			}
			out = append(out, g.LocalFeatures[int(l)*d:(int(l)+1)*d]...)
		}
		return &FeatureFuture{feats: out, dim: d}
	}
	if g.Clients[dstShard] == nil && g.Router == nil {
		return &FeatureFuture{err: fmt.Errorf("core: no client for shard %d", dstShard)}
	}
	if g.FeatCache != nil {
		return g.fetchFeaturesCached(obs.FromContext(ctx), dstShard, locals, mass)
	}
	if ag := g.featAggFor(dstShard); ag != nil {
		return &FeatureFuture{dstShard: dstShard, aggTicket: ag.EnqueueTraced(obs.FromContext(ctx), locals), remoteRows: int64(len(locals))}
	}
	payload := wire.EncodeIDList(locals)
	return &FeatureFuture{
		dstShard: dstShard, zeroCopy: g.zeroCopyFeatures(), remoteRows: int64(len(locals)),
		rpcReqs: 1, reqBytes: int64(len(payload)),
		fut: g.call(ctx, dstShard, rpc.MethodFetchFeatures, payload),
	}
}

// zeroCopyFeatures reports whether feature responses should be view-decoded.
// The feature path has no per-query Config, so the knob is structural: any
// attached machinery built with ZeroCopy (or nothing at all — the default
// config enables it) aliases; a plain copy profile is what the serve
// ablation's "off" pass gets by constructing without zero-copy.
func (g *DistGraphStorage) zeroCopyFeatures() bool { return g.featZeroCopyOff == 0 }

// SetFeatureZeroCopy toggles view decoding for uncached direct feature
// fetches (used by ablations; on by default).
func (g *DistGraphStorage) SetFeatureZeroCopy(on bool) {
	if on {
		g.featZeroCopyOff = 0
	} else {
		g.featZeroCopyOff = 1
	}
}

// cachedFeatFetch is the per-future state of a cache-mediated feature
// fetch: row i corresponds to the i-th requested local ID and is either a
// cache hit (filled at issue time) or resolved through a flight.
type cachedFeatFetch struct {
	rows    [][]float32
	flights []*cache.FeatFlight // nil at hit indices
}

// featFetchGroup decodes one leader RPC response and fulfills the flights
// of every row it carries — idempotent and drivable by any participant,
// like fetchGroup.
type featFetchGroup struct {
	fut  respFuture
	zc   bool
	once sync.Once
	// flights[i] is the flight for the i-th requested row.
	flights []*cache.FeatFlight
}

// resolve must only be called after fut resolved (its Done channel closed).
func (fg *featFetchGroup) resolve() {
	fg.once.Do(func() {
		payload, err := fg.fut.Wait()
		if err != nil {
			fg.fut.Release()
			fg.fail(wrapFeatureErr(err))
			return
		}
		// The flights copy each row into cache-owned storage, so the
		// response payload goes home as soon as the demux finishes — one
		// decode, here, read by every waiter through the cache rows.
		var feats []float32
		var dim int
		if fg.zc {
			dim, feats, err = wire.DecodeFeatureResponseView(payload)
		} else {
			dim, feats, err = wire.DecodeFeatureResponse(payload)
		}
		defer fg.fut.Release()
		if err != nil {
			fg.fail(err)
			return
		}
		if dim <= 0 || len(feats) != len(fg.flights)*dim {
			fg.fail(fmt.Errorf("core: feature fetch returned %d floats at dim %d, want %d rows", len(feats), dim, len(fg.flights)))
			return
		}
		for i, fl := range fg.flights {
			row := make([]float32, dim)
			copy(row, feats[i*dim:(i+1)*dim])
			fl.Fulfill(row, nil)
		}
	})
}

func (fg *featFetchGroup) fail(err error) {
	for _, fl := range fg.flights {
		fl.Fulfill(nil, err)
	}
}

// featAggResolver fulfills a cached feature fetch's leader flights from its
// aggregator ticket's row range. Idempotent; whichever participant observes
// the ticket resolve first drives it.
type featAggResolver struct {
	t       *agg.FeatTicket
	once    sync.Once
	flights []*cache.FeatFlight
}

// resolve must only be called after the ticket's Done channel closed.
func (ar *featAggResolver) resolve() {
	ar.once.Do(func() {
		feats, dim, err := ar.t.Result()
		if err != nil {
			ar.t.Release()
			for _, fl := range ar.flights {
				fl.Fulfill(nil, wrapFeatureErr(err))
			}
			return
		}
		for i, fl := range ar.flights {
			row := make([]float32, dim)
			copy(row, feats[i*dim:(i+1)*dim])
			fl.Fulfill(row, nil)
		}
		// Rows are now cache-owned copies; this ticket's share of the flush
		// payload goes home. The resolver owns the cached path's ticket, so
		// an abandoned leader still returns the buffer.
		ar.t.Release()
	})
}

// fetchFeaturesCached serves a feature fetch through the shared cache: hits
// resolve immediately, misses elect single-flight leaders, and this future
// issues one RPC (or one aggregator ticket) covering the rows it leads.
// Like the neighbor-row cached path, the leader RPC is issued without the
// query's context — the fetch is shared machine-wide state — but carries
// its trace context.
func (g *DistGraphStorage) fetchFeaturesCached(sc obs.SpanContext, dstShard int32, locals []int32, mass []float64) *FeatureFuture {
	cf := &cachedFeatFetch{
		rows:    make([][]float32, len(locals)),
		flights: make([]*cache.FeatFlight, len(locals)),
	}
	f := &FeatureFuture{dstShard: dstShard, cached: cf, tr: g.Tracer, sc: sc}
	var leaderLocals []int32
	var leaderFlights []*cache.FeatFlight
	for i, l := range locals {
		m := 0.0
		if mass != nil {
			m = mass[i]
		}
		row, hit, fl, leader := g.FeatCache.GetOrReserve(dstShard, l, m)
		switch {
		case hit:
			cf.rows[i] = row
			f.cacheHits++
		case leader:
			cf.flights[i] = fl
			leaderLocals = append(leaderLocals, l)
			leaderFlights = append(leaderFlights, fl)
		default:
			cf.flights[i] = fl
			f.cacheCoalesced++
		}
	}
	f.remoteRows = int64(len(leaderLocals))
	if len(leaderLocals) > 0 {
		if ag := g.featAggFor(dstShard); ag != nil {
			t := ag.EnqueueTraced(sc, leaderLocals)
			f.aggTicket = t
			ar := &featAggResolver{t: t, flights: leaderFlights}
			for _, fl := range leaderFlights {
				fl.AttachSource(t.Done(), ar.resolve)
			}
		} else {
			payload := wire.EncodeIDList(leaderLocals)
			f.rpcReqs = 1
			f.reqBytes = int64(len(payload))
			fg := &featFetchGroup{
				fut:     g.call(obs.ContextWith(context.Background(), sc), dstShard, rpc.MethodFetchFeatures, payload),
				zc:      g.zeroCopyFeatures(),
				flights: leaderFlights,
			}
			for _, fl := range leaderFlights {
				fl.AttachSource(fg.fut.Done(), fg.resolve)
			}
		}
	}
	return f
}

// waitCached assembles the feature block for a cache-mediated fetch: hits
// are in place; every other row waits on its flight under ctx (timed as a
// "featcache:wait" span when traced). The block is assembled into a fresh
// contiguous slice — cache rows stay cache-owned.
func (f *FeatureFuture) waitCached(ctx context.Context) ([]float32, int, error) {
	cf := f.cached
	var span obs.ActiveSpan
	waiting := false
	for i, fl := range cf.flights {
		if fl == nil {
			continue // cache hit, filled at issue time
		}
		if !waiting {
			waiting = true
			span = f.tr.StartSpan(f.sc, "featcache:wait")
			span.SetShard(f.dstShard)
		}
		row, err := fl.Wait(ctx)
		if err != nil {
			f.err = wrapPeerErr(f.dstShard, err)
			span.SetErr(true)
			span.End()
			return nil, 0, f.err
		}
		cf.rows[i] = row
	}
	span.End()
	if len(cf.rows) == 0 {
		f.feats = []float32{}
		return f.feats, f.dim, nil
	}
	f.dim = len(cf.rows[0])
	f.feats = make([]float32, 0, len(cf.rows)*f.dim)
	for i, row := range cf.rows {
		if len(row) != f.dim {
			f.err = fmt.Errorf("core: cached feature rows disagree on dim: %d vs %d (row %d)", f.dim, len(row), i)
			return nil, 0, f.err
		}
		f.feats = append(f.feats, row...)
	}
	return f.feats, f.dim, nil
}
