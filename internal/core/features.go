package core

import (
	"context"
	"fmt"

	"pprengine/internal/rpc"
	"pprengine/internal/wire"
)

// Feature access for the GNN case study (§4.5): every shard's storage
// server can host a row-major feature block for its core vertices; compute
// processes slice features for mini-batch subgraphs through the same
// local/remote split as neighbor fetches ("slices corresponding features
// from a cross-machine feature store").

// AttachFeatures registers the feature block on the server side.
func (ss *StorageServer) AttachFeatures(dim int, feats []float32) error {
	if len(feats) != ss.Shard.NumCore()*dim {
		return fmt.Errorf("core: feature block has %d floats, want %d", len(feats), ss.Shard.NumCore()*dim)
	}
	ss.Features = feats
	ss.FeatureDim = dim
	return nil
}

// AttachLocalFeatures gives a compute process shared-memory access to its
// machine's feature block.
func (g *DistGraphStorage) AttachLocalFeatures(dim int, feats []float32) {
	g.LocalFeatures = feats
	g.FeatureDim = dim
}

// FeatureFuture resolves to a row-major [len(ids) x dim] feature block.
type FeatureFuture struct {
	feats []float32
	dim   int
	err   error
	fut   *rpc.Future
}

// Wait blocks for the block.
func (f *FeatureFuture) Wait() ([]float32, int, error) {
	return f.WaitCtx(context.Background())
}

// WaitCtx is Wait bounded by a context.
func (f *FeatureFuture) WaitCtx(ctx context.Context) ([]float32, int, error) {
	if f.feats != nil || f.err != nil {
		return f.feats, f.dim, f.err
	}
	payload, err := f.fut.WaitCtx(ctx)
	if err != nil {
		f.err = err
		return nil, 0, err
	}
	f.dim, f.feats, f.err = decodeFeatures(payload)
	return f.feats, f.dim, f.err
}

func decodeFeatures(payload []byte) (int, []float32, error) {
	dim, feats, err := wire.DecodeFeatureResponse(payload)
	return dim, feats, err
}

// FetchFeatures gathers feature rows for core vertices of dstShard. Remote
// requests are issued under ctx.
func (g *DistGraphStorage) FetchFeatures(ctx context.Context, dstShard int32, locals []int32) *FeatureFuture {
	if dstShard == g.ShardID {
		if g.LocalFeatures == nil {
			return &FeatureFuture{err: fmt.Errorf("core: no local feature store on shard %d", g.ShardID)}
		}
		d := g.FeatureDim
		out := make([]float32, 0, len(locals)*d)
		for _, l := range locals {
			if err := g.Local.CheckLocal(l); err != nil {
				return &FeatureFuture{err: err}
			}
			out = append(out, g.LocalFeatures[int(l)*d:(int(l)+1)*d]...)
		}
		return &FeatureFuture{feats: out, dim: d}
	}
	c := g.Clients[dstShard]
	if c == nil {
		return &FeatureFuture{err: fmt.Errorf("core: no client for shard %d", dstShard)}
	}
	return &FeatureFuture{fut: c.CallCtx(ctx, rpc.MethodFetchFeatures, wire.EncodeIDList(locals))}
}
