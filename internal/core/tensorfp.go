package core

import (
	"context"
	"math"

	"pprengine/internal/graph"
	"pprengine/internal/metrics"
	"pprengine/internal/tensor"
)

// RunTensorSSPPR is the "PyTorch Tensor" baseline of §4.2: the same
// distributed parallel Forward Push, but holding the query state in dense
// |V|-length vectors and detecting the frontier with a full tensor scan.
// It talks to the identical DistGraphStorage (batched, CSR-compressed RPC),
// so the only difference from the engine is the data structure — which is
// exactly the comparison the paper makes.
//
// The per-iteration O(|V|) frontier scan is charged to PhasePop so the
// breakdown experiments can include or omit it, as the paper does in
// Figure 6.
//
// Like RunSSPPR, the baseline honors ctx plus cfg.QueryTimeout: the context
// is checked before every iteration and on every fetch wait.
func RunTensorSSPPR(ctx context.Context, g *DistGraphStorage, sourceLocal int32, cfg Config, bd *metrics.Breakdown) (tensor.Vec, QueryStats, error) {
	ctx, cancel := cfg.applyQueryTimeout(ctx)
	defer cancel()
	numNodes := len(g.Locator.ShardOf)
	var stats QueryStats

	p := tensor.NewVec(numNodes)
	r := tensor.NewVec(numNodes)
	// Dense thresholds: dw is learned from fetched neighbor tuples. A node
	// can only gain residual via a scatter that also records its weighted
	// degree, so +Inf entries are exactly the never-touched nodes.
	dw := tensor.NewVec(numNodes)
	dw.Fill(math.Inf(1))
	srcGlobal := int32(g.Locator.Global(g.ShardID, sourceLocal))
	r[srcGlobal] = 1
	dw[srcGlobal] = 0 // activate the source before its degree is known

	byShard := make([][]int32, g.NumShards)       // local IDs per shard
	globalByShard := make([][]int32, g.NumShards) // corresponding global IDs
	for {
		if err := ctx.Err(); err != nil {
			stats.Timeouts++
			metrics.QueryTimeouts.Inc(1)
			return nil, stats, err
		}
		// Frontier detection: full |V| scan (the tensor-library way), a
		// handful of whole-tensor ops (compare, multiply, nonzero).
		var active []int32
		bd.Time(metrics.PhasePop, func() {
			cfg.dispatch(3)
			active = tensor.NonzeroGreater(r, dw, cfg.Eps)
		})
		if len(active) == 0 {
			break
		}
		stats.Iterations++
		for i := range byShard {
			byShard[i] = byShard[i][:0]
			globalByShard[i] = globalByShard[i][:0]
		}
		for _, gv := range active {
			sh, lc := g.Locator.Locate(graph.NodeID(gv))
			byShard[sh] = append(byShard[sh], lc)
			globalByShard[sh] = append(globalByShard[sh], gv)
		}
		self := g.ShardID

		type pending struct {
			shard int32
			fut   *InfoFuture
		}
		var remotes []pending
		stopIssue := bd.Start(metrics.PhaseRemoteFetch)
		for j := int32(0); j < g.NumShards; j++ {
			if j == self || len(byShard[j]) == 0 {
				continue
			}
			fut := g.GetNeighborInfos(ctx, j, byShard[j], cfg)
			remotes = append(remotes, pending{j, fut})
			stats.RemoteRows += fut.RemoteRows()
			stats.CacheHits += fut.CacheHits()
			stats.CacheCoalesced += fut.CacheCoalesced()
		}
		stopIssue()

		pushBatch := func(batch NeighborBatch, globals []int32) {
			for i := 0; i < batch.NumRows(); i++ {
				// The list-of-lists response format forces the tensor
				// implementation to process rows one by one, issuing ~6
				// small tensor ops per row (index translation, division,
				// scatter_add, threshold update, ...). Each op pays the
				// library's dispatch overhead.
				cfg.dispatch(6)
				nl, ns, nw, nd, rowWDeg := batch.Row(i)
				v := globals[i]
				rv := r[v]
				if rv == 0 {
					continue
				}
				stats.Pushes++
				p[v] += cfg.Alpha * rv
				r[v] = 0
				if rowWDeg <= 0 {
					continue
				}
				mass := (1 - cfg.Alpha) * rv / float64(rowWDeg)
				// Tensor-style update: translate (local, shard) pairs to a
				// global index tensor, then scatter-add.
				idx := make([]int32, len(nl))
				delta := make(tensor.Vec, len(nl))
				for j := range nl {
					idx[j] = int32(g.Locator.Global(ns[j], nl[j]))
					delta[j] = float64(nw[j]) * mass
				}
				r.ScatterAdd(idx, delta)
				for j := range idx {
					dw[idx[j]] = float64(nd[j])
				}
			}
		}

		pushLocal := func() error {
			if len(byShard[self]) == 0 {
				return nil
			}
			var batch NeighborBatch
			var err error
			bd.Time(metrics.PhaseLocalFetch, func() {
				fut := g.GetNeighborInfos(ctx, self, byShard[self], cfg)
				batch, err = fut.WaitCtx(ctx)
				stats.RPCRequests += fut.RPCRequests()
				stats.RequestBytes += fut.RequestBytes()
			})
			if err != nil {
				return err
			}
			stats.LocalRows += int64(len(byShard[self]))
			bd.Time(metrics.PhasePush, func() { pushBatch(batch, globalByShard[self]) })
			return nil
		}

		if cfg.Overlap {
			if err := pushLocal(); err != nil {
				return nil, stats, err
			}
			for _, pd := range remotes {
				var batch NeighborBatch
				var err error
				bd.Time(metrics.PhaseRemoteFetch, func() {
					batch, err = pd.fut.WaitCtx(ctx)
					stats.RPCRequests += pd.fut.RPCRequests()
					stats.RequestBytes += pd.fut.RequestBytes()
				})
				if err != nil {
					return nil, stats, err
				}
				bd.Time(metrics.PhasePush, func() { pushBatch(batch, globalByShard[pd.shard]) })
			}
		} else {
			batches := make([]NeighborBatch, len(remotes))
			for i, pd := range remotes {
				var err error
				bd.Time(metrics.PhaseRemoteFetch, func() {
					batches[i], err = pd.fut.WaitCtx(ctx)
					stats.RPCRequests += pd.fut.RPCRequests()
					stats.RequestBytes += pd.fut.RequestBytes()
				})
				if err != nil {
					return nil, stats, err
				}
			}
			if err := pushLocal(); err != nil {
				return nil, stats, err
			}
			for i, pd := range remotes {
				bd.Time(metrics.PhasePush, func() { pushBatch(batches[i], globalByShard[pd.shard]) })
			}
		}
	}
	for _, v := range p {
		if v > 0 {
			stats.TouchedNodes++
		}
	}
	return p, stats, nil
}
