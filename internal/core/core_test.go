package core

import (
	"context"
	"math"
	"testing"

	"pprengine/internal/graph"
	"pprengine/internal/metrics"
	"pprengine/internal/partition"
	"pprengine/internal/pmap"
	"pprengine/internal/ppr"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

// testDeployment builds a K-shard deployment around graph g with real RPC
// servers, returning one DistGraphStorage per shard plus a cleanup func.
func testDeployment(t *testing.T, g *graph.Graph, k int) ([]*DistGraphStorage, []*shard.Shard, *shard.Locator, func()) {
	t.Helper()
	assign, err := partition.Partition(g, k, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shards, loc, err := shard.Build(g, assign, k)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*StorageServer, k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		servers[i] = NewStorageServer(shards[i], loc)
		addrs[i], err = servers[i].Start()
		if err != nil {
			t.Fatal(err)
		}
	}
	var allClients []*rpc.Client
	storages := make([]*DistGraphStorage, k)
	for i := 0; i < k; i++ {
		clients := make([]*rpc.Client, k)
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			c, err := rpc.Dial(addrs[j], rpc.LatencyModel{})
			if err != nil {
				t.Fatal(err)
			}
			clients[j] = c
			allClients = append(allClients, c)
		}
		storages[i] = NewDistGraphStorage(int32(i), shards[i], loc, clients)
	}
	cleanup := func() {
		for _, c := range allClients {
			c.Close()
		}
		for _, s := range servers {
			s.Close()
		}
	}
	return storages, shards, loc, cleanup
}

func testGraph(seed int64, n int, m int64) *graph.Graph {
	return graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: n, NumEdges: m, A: 0.55, B: 0.2, C: 0.15, Seed: seed,
	}))
}

const alpha = 0.462

func TestDistributedMatchesSingleMachine(t *testing.T) {
	g := testGraph(1, 300, 1800)
	storages, _, loc, cleanup := testDeployment(t, g, 3)
	defer cleanup()
	exact, _ := ppr.PowerIteration(g, 5, alpha, 1e-12, 100000)
	cfg := DefaultConfig()
	cfg.Eps = 1e-7
	sh, lc := loc.Locate(5)
	m, stats, err := RunSSPPR(context.Background(), storages[sh], lc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pushes == 0 || stats.Iterations == 0 {
		t.Fatal("no work recorded")
	}
	scores := ScoresGlobal(storages[sh], m)
	// Same eps-approximation bound as the single-machine kernel.
	l1 := 0.0
	for v, ev := range exact {
		l1 += math.Abs(scores[int32(v)] - ev)
	}
	var sumDW float64
	for _, d := range g.WeightedDegree {
		sumDW += float64(d)
	}
	if l1 > cfg.Eps*sumDW {
		t.Fatalf("L1 error %v exceeds bound %v", l1, cfg.Eps*sumDW)
	}
	// Cross-check against the sequential single-machine forward push.
	seq := ppr.ForwardPush(g, 5, alpha, 1e-7)
	for v, sv := range seq.Scores {
		if math.Abs(scores[int32(v)]-sv) > 1e-4 {
			t.Fatalf("node %d: distributed %v vs sequential %v", v, scores[int32(v)], sv)
		}
	}
}

func TestAllFetchModesAgree(t *testing.T) {
	g := testGraph(2, 200, 1200)
	storages, _, loc, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	sh, lc := loc.Locate(9)
	var ref map[int32]float64
	for _, mode := range []FetchMode{FetchSingle, FetchBatch, FetchBatchCompress} {
		for _, overlap := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.Mode = mode
			cfg.Overlap = overlap
			cfg.Eps = 1e-6
			m, _, err := RunSSPPR(context.Background(), storages[sh], lc, cfg, nil)
			if err != nil {
				t.Fatalf("mode=%v overlap=%v: %v", mode, overlap, err)
			}
			scores := ScoresGlobal(storages[sh], m)
			if ref == nil {
				ref = scores
				continue
			}
			if len(scores) < len(ref)*9/10 || len(scores) > len(ref)*11/10 {
				t.Fatalf("mode=%v overlap=%v: touched %d vs %d", mode, overlap, len(scores), len(ref))
			}
			for v, rv := range ref {
				// eps-approximations differ per push order by up to
				// ~alpha*eps*dw per node plus downstream effects.
				if math.Abs(scores[v]-rv) > 5e-4 {
					t.Fatalf("mode=%v overlap=%v node %d: %v vs %v", mode, overlap, v, scores[v], rv)
				}
			}
		}
	}
}

func TestPushVariantsAgree(t *testing.T) {
	g := testGraph(3, 250, 1600)
	storages, _, loc, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	sh, lc := loc.Locate(3)
	configs := []Config{
		func() Config { c := DefaultConfig(); c.PushWorkers = 1; return c }(),
		func() Config { c := DefaultConfig(); c.PushWorkers = 4; c.PushThreshold = 1; return c }(),
		func() Config {
			c := DefaultConfig()
			c.PushWorkers = 4
			c.PushThreshold = 1
			c.LockedPush = true
			return c
		}(),
	}
	var ref map[int32]float64
	for i, cfg := range configs {
		cfg.Eps = 1e-6
		m, _, err := RunSSPPR(context.Background(), storages[sh], lc, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		scores := ScoresGlobal(storages[sh], m)
		if ref == nil {
			ref = scores
			continue
		}
		for v, rv := range ref {
			if math.Abs(scores[v]-rv) > 5e-4 {
				t.Fatalf("config %d node %d: %v vs %v", i, v, scores[v], rv)
			}
		}
	}
}

func TestTensorBaselineMatchesEngine(t *testing.T) {
	g := testGraph(4, 200, 1200)
	storages, _, loc, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	sh, lc := loc.Locate(7)
	cfg := DefaultConfig()
	cfg.Eps = 1e-6
	m, _, err := RunSSPPR(context.Background(), storages[sh], lc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	engineScores := ScoresGlobal(storages[sh], m)
	p, stats, err := RunTensorSSPPR(context.Background(), storages[sh], lc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pushes == 0 {
		t.Fatal("tensor baseline did no work")
	}
	for v, ev := range engineScores {
		if math.Abs(p[v]-ev) > 5e-4 {
			t.Fatalf("node %d: tensor %v vs engine %v", v, p[v], ev)
		}
	}
	// The touched sets agree modulo threshold noise.
	touched := 0
	for _, x := range p {
		if x > 0 {
			touched++
		}
	}
	if touched < len(engineScores)*9/10 || touched > len(engineScores)*11/10 {
		t.Fatalf("tensor touched %d, engine %d", touched, len(engineScores))
	}
}

func TestBreakdownIsPopulated(t *testing.T) {
	g := testGraph(5, 300, 2000)
	storages, _, loc, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	sh, lc := loc.Locate(11)
	bd := metrics.NewBreakdown()
	cfg := DefaultConfig()
	if _, _, err := RunSSPPR(context.Background(), storages[sh], lc, cfg, bd); err != nil {
		t.Fatal(err)
	}
	if bd.Count(metrics.PhasePop) == 0 || bd.Count(metrics.PhasePush) == 0 {
		t.Fatalf("breakdown not populated: %v", bd)
	}
	if bd.Get(metrics.PhaseRemoteFetch) == 0 {
		t.Fatalf("expected remote fetch time on a 2-shard run: %v", bd)
	}
}

func TestQueryStatsRemoteLocalSplit(t *testing.T) {
	g := testGraph(6, 300, 2000)
	storages, _, loc, cleanup := testDeployment(t, g, 3)
	defer cleanup()
	sh, lc := loc.Locate(0)
	_, stats, err := RunSSPPR(context.Background(), storages[sh], lc, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LocalRows == 0 {
		t.Fatal("no local rows")
	}
	if stats.RemoteRows == 0 {
		t.Fatal("no remote rows on a 3-shard run")
	}
	if stats.TouchedNodes == 0 {
		t.Fatal("no touched nodes")
	}
}

func TestSSPPRPopClearsSet(t *testing.T) {
	m := NewSSPPR(4, 0, DefaultConfig())
	locals, shards := m.Pop()
	if len(locals) != 1 || locals[0] != 4 || shards[0] != 0 {
		t.Fatalf("pop = %v %v", locals, shards)
	}
	locals, _ = m.Pop()
	if len(locals) != 0 {
		t.Fatal("second pop should be empty")
	}
}

func TestPushMismatchedSizesPanics(t *testing.T) {
	m := NewSSPPR(0, 0, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b, _ := BuildInfos(mustShard(t), []int32{0})
	m.Push(InfosBatch(b), []int32{0, 1}, []int32{0, 0})
}

func mustShard(t *testing.T) *shard.Shard {
	t.Helper()
	g := graph.Ring(4)
	shards, _, err := shard.Build(g, partition.Assignment{0, 0, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return shards[0]
}

func TestBuildInfosValidation(t *testing.T) {
	s := mustShard(t)
	if _, err := BuildInfos(s, []int32{99}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	infos, err := BuildInfos(s, nil)
	if err != nil || infos.NumRows() != 0 {
		t.Fatalf("empty batch: %v %v", infos, err)
	}
}

func TestLocalBatchZeroCopy(t *testing.T) {
	s := mustShard(t)
	b := LocalBatch(s, []int32{1, 2})
	if b.NumRows() != 2 {
		t.Fatal("rows")
	}
	locals, shards, weights, wdegs, rowWDeg := b.Row(0)
	if len(locals) != 1 || locals[0] != 2 || shards[0] != 0 {
		t.Fatalf("row 0: %v %v", locals, shards)
	}
	if weights[0] != 1 || wdegs[0] != 1 || rowWDeg != 1 {
		t.Fatalf("weights: %v %v %v", weights, wdegs, rowWDeg)
	}
	// Zero copy: slices alias the shard arrays.
	if &locals[0] != &s.NbrLocal[s.Indptr[1]] {
		t.Fatal("local batch copied data")
	}
}

func TestGetNeighborInfosLocalValidation(t *testing.T) {
	g := testGraph(7, 100, 500)
	storages, _, _, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	if _, err := storages[0].GetNeighborInfos(context.Background(), 0, []int32{1 << 20}, Config{Mode: FetchBatchCompress}).Wait(); err == nil {
		t.Fatal("expected validation error for bad local id")
	}
}

func TestGetNeighborInfosRemoteError(t *testing.T) {
	g := testGraph(8, 100, 500)
	storages, _, _, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	if _, err := storages[0].GetNeighborInfos(context.Background(), 1, []int32{1 << 20}, Config{Mode: FetchBatchCompress}).Wait(); err == nil {
		t.Fatal("expected remote validation error")
	}
}

func TestRandomWalkDistributed(t *testing.T) {
	g := testGraph(9, 200, 1400)
	storages, _, loc, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	roots := []int32{0, 1, 2, 3}
	walkLen := 8
	sum, err := RunRandomWalk(context.Background(), storages[0], roots, walkLen, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) != len(roots) {
		t.Fatalf("walks = %d", len(sum))
	}
	for i, w := range sum {
		if len(w) != walkLen+1 {
			t.Fatalf("walk %d length %d", i, len(w))
		}
		if w[0] != int32(loc.Global(0, roots[i])) {
			t.Fatalf("walk %d does not start at root", i)
		}
		// Every consecutive pair must be an edge of g (unless frozen at a
		// dead end, which repeats the same ID).
		for s := 0; s < walkLen; s++ {
			if w[s] == w[s+1] {
				continue // dead end padding (no self loops in g)
			}
			found := false
			for _, u := range g.Neighbors(graph.NodeID(w[s])) {
				if int32(u) == w[s+1] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("walk %d step %d: %d -> %d is not an edge", i, s, w[s], w[s+1])
			}
		}
	}
}

func TestRandomWalkDeterministicSeed(t *testing.T) {
	g := testGraph(10, 150, 900)
	storages, _, _, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	a, err := RunRandomWalk(context.Background(), storages[0], []int32{0, 1}, 6, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRandomWalk(context.Background(), storages[0], []int32{0, 1}, 6, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("random walk not deterministic for fixed seed")
			}
		}
	}
}

func TestRandomWalkDeadEnd(t *testing.T) {
	// Path 0->1->2, node 2 dangling. One shard.
	g, _ := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}})
	shards, loc, err := shard.Build(g, partition.Assignment{0, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := NewDistGraphStorage(0, shards[0], loc, make([]*rpc.Client, 1))
	sum, err := RunRandomWalk(context.Background(), st, []int32{0}, 5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := sum[0]
	if w[0] != 0 || w[1] != 1 || w[2] != 2 {
		t.Fatalf("walk = %v", w)
	}
	for s := 2; s <= 5; s++ {
		if w[s] != 2 {
			t.Fatalf("dead end not frozen: %v", w)
		}
	}
}

func TestSampleOneNeighborWeighted(t *testing.T) {
	// Node 0 has neighbors 1 (weight 99) and 2 (weight 1): samples should
	// overwhelmingly pick 1.
	g, _ := graph.FromEdges(3, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 99}, {Src: 0, Dst: 2, Weight: 1},
	})
	shards, loc, err := shard.Build(g, partition.Assignment{0, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	picks := map[int32]int{}
	for seed := int64(0); seed < 200; seed++ {
		resp, err := SampleOneNeighborLocal(shards[0], loc, []int32{0}, seed)
		if err != nil {
			t.Fatal(err)
		}
		picks[resp.Globals[0]]++
	}
	if picks[1] < 180 {
		t.Fatalf("weighted sampling broken: %v", picks)
	}
}

func TestScoresAndResidualMass(t *testing.T) {
	g := testGraph(11, 200, 1200)
	storages, _, loc, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	sh, lc := loc.Locate(1)
	m, _, err := RunSSPPR(context.Background(), storages[sh], lc, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range m.Scores() {
		sum += v
	}
	resid := m.ResidualMass()
	// Conservation: captured + residual ≈ 1 on graphs without dangling
	// nodes reachable from the source.
	if math.Abs(sum+resid-1) > 1e-6 {
		t.Fatalf("mass: scores %v + residual %v != 1", sum, resid)
	}
}

func TestFetchModeStrings(t *testing.T) {
	if FetchSingle.String() != "Single" || FetchBatch.String() != "+Batch" || FetchBatchCompress.String() != "+Compress" {
		t.Fatal("labels wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.pushWorkers() <= 0 || c.pushThreshold() != 64 {
		t.Fatal("defaults wrong")
	}
	d := DefaultConfig()
	if d.Alpha != 0.462 || d.Eps != 1e-6 || d.Mode != FetchBatchCompress || !d.Overlap {
		t.Fatalf("paper defaults wrong: %+v", d)
	}
}

func TestSSPPRKeyedByShard(t *testing.T) {
	// Two vertices with the same local ID in different shards must not
	// collide in the maps.
	m := NewSSPPR(0, 0, DefaultConfig())
	m.r.Set(pmap.Key{Local: 0, Shard: 1}, 0.5)
	if v, _ := m.r.Get(pmap.Key{Local: 0, Shard: 0}); v != 1 {
		t.Fatalf("source residual = %v", v)
	}
	if v, _ := m.r.Get(pmap.Key{Local: 0, Shard: 1}); v != 0.5 {
		t.Fatalf("other residual = %v", v)
	}
}
