package core

import (
	"context"
	"math"
	"testing"

	"pprengine/internal/partition"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

func TestHaloCacheReducesRemoteRows(t *testing.T) {
	g := testGraph(21, 400, 2400)
	assign, err := partition.Partition(g, 3, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	build := func(halo bool) ([]*DistGraphStorage, func()) {
		shards, loc, err := shard.BuildWithOptions(g, assign, 3, shard.BuildOptions{CacheHaloRows: halo})
		if err != nil {
			t.Fatal(err)
		}
		servers := make([]*StorageServer, 3)
		addrs := make([]string, 3)
		for i := range servers {
			servers[i] = NewStorageServer(shards[i], loc)
			addrs[i], err = servers[i].Start()
			if err != nil {
				t.Fatal(err)
			}
		}
		var all []*rpc.Client
		storages := make([]*DistGraphStorage, 3)
		for i := range storages {
			clients := make([]*rpc.Client, 3)
			for j := range clients {
				if j == i {
					continue
				}
				c, err := rpc.Dial(addrs[j], rpc.LatencyModel{})
				if err != nil {
					t.Fatal(err)
				}
				clients[j] = c
				all = append(all, c)
			}
			storages[i] = NewDistGraphStorage(int32(i), shards[i], loc, clients)
		}
		return storages, func() {
			for _, c := range all {
				c.Close()
			}
			for _, s := range servers {
				s.Close()
			}
		}
	}

	plain, cleanup1 := build(false)
	defer cleanup1()
	halo, cleanup2 := build(true)
	defer cleanup2()

	cfg := DefaultConfig()
	mPlain, sPlain, err := RunSSPPR(context.Background(), plain[0], 2, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	mHalo, sHalo, err := RunSSPPR(context.Background(), halo[0], 2, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sHalo.HaloRows == 0 {
		t.Fatal("halo cache unused")
	}
	if sPlain.HaloRows != 0 {
		t.Fatal("plain run reported halo rows")
	}
	if sHalo.RemoteRows >= sPlain.RemoteRows {
		t.Fatalf("halo cache did not cut remote rows: %d vs %d", sHalo.RemoteRows, sPlain.RemoteRows)
	}
	// A 1-hop halo cache serves every remote expansion of a core node's
	// direct neighbors; only deeper frontier vertices still go remote.
	t.Logf("remote rows: plain=%d halo=%d (halo served %d)", sPlain.RemoteRows, sHalo.RemoteRows, sHalo.HaloRows)

	// Results agree within eps-approximation noise.
	a := ScoresGlobal(plain[0], mPlain)
	b := ScoresGlobal(halo[0], mHalo)
	for v, av := range a {
		if math.Abs(b[v]-av) > 5e-4 {
			t.Fatalf("node %d: %v vs %v", v, av, b[v])
		}
	}
}
