package core

import (
	"context"
	"reflect"
	"testing"

	"pprengine/internal/graph"
	"pprengine/internal/partition"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

// testSamplingDeployment is testDeployment but keeps the servers, so tests
// can flip the structural sampling zero-copy gate on both ends.
func testSamplingDeployment(t *testing.T, g *graph.Graph, k int) ([]*DistGraphStorage, []*StorageServer, func()) {
	t.Helper()
	assign, err := partition.Partition(g, k, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shards, loc, err := shard.Build(g, assign, k)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*StorageServer, k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		servers[i] = NewStorageServer(shards[i], loc)
		addrs[i], err = servers[i].Start()
		if err != nil {
			t.Fatal(err)
		}
	}
	var allClients []*rpc.Client
	storages := make([]*DistGraphStorage, k)
	for i := 0; i < k; i++ {
		clients := make([]*rpc.Client, k)
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			c, err := rpc.Dial(addrs[j], rpc.LatencyModel{})
			if err != nil {
				t.Fatal(err)
			}
			clients[j] = c
			allClients = append(allClients, c)
		}
		storages[i] = NewDistGraphStorage(int32(i), shards[i], loc, clients)
	}
	cleanup := func() {
		for _, c := range allClients {
			c.Close()
		}
		for _, s := range servers {
			s.Close()
		}
	}
	return storages, servers, cleanup
}

// The arena/view sampling path consumes the rng draw for draw, so toggling
// the structural zero-copy gate — on both the serving and the compute side —
// must not change a single sampled edge.
func TestKHopSampleZeroCopyTogglesEqual(t *testing.T) {
	g := testGraph(34, 400, 2600)
	storages, servers, cleanup := testSamplingDeployment(t, g, 3)
	defer cleanup()
	roots := []int32{0, 1, 2, 3}
	fanouts := []int{5, 4}

	run := func() *KHopResult {
		t.Helper()
		res, err := RunKHopSample(context.Background(), storages[0], roots, fanouts, 77, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run() // zero-copy on: the default
	for _, srv := range servers {
		srv.SetSampleZeroCopy(false)
	}
	for _, st := range storages {
		st.SetSampleZeroCopy(false)
	}
	if got := run(); !reflect.DeepEqual(want, got) {
		t.Fatalf("legacy pass sampled a different graph: %d/%d nodes, %d/%d edges",
			len(want.Nodes), len(got.Nodes), len(want.EdgeSrc), len(got.EdgeSrc))
	}
	// Mixed gates (legacy server, view client and vice versa) must also agree:
	// the wire format is shared, only the decode strategy differs.
	for _, srv := range servers {
		srv.SetSampleZeroCopy(true)
	}
	if got := run(); !reflect.DeepEqual(want, got) {
		t.Fatal("mixed-gate pass sampled a different graph")
	}
}

// A warm KHopSampler must return exactly what a fresh one does: Run clears
// the dedup index and accumulators, and results own their memory (no aliasing
// into sampler scratch that a later Run would overwrite).
func TestKHopSamplerReuse(t *testing.T) {
	g := testGraph(35, 300, 1800)
	storages, _, cleanup := testSamplingDeployment(t, g, 2)
	defer cleanup()
	s := NewKHopSampler()
	var warm []*KHopResult
	for i := 0; i < 3; i++ {
		res, err := s.Run(context.Background(), storages[0], []int32{0, 1, int32(i)}, []int{4, 4}, 11, nil)
		if err != nil {
			t.Fatal(err)
		}
		warm = append(warm, res)
	}
	for i := 0; i < 3; i++ {
		fresh, err := RunKHopSample(context.Background(), storages[0], []int32{0, 1, int32(i)}, []int{4, 4}, 11, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fresh, warm[i]) {
			t.Fatalf("run %d: warm sampler diverged from fresh (%d vs %d nodes)",
				i, len(warm[i].Nodes), len(fresh.Nodes))
		}
	}
}
