package core

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pprengine/internal/graph"
	"pprengine/internal/partition"
	"pprengine/internal/pmap"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

// TestHaloWithAllFetchModes combines the halo-row cache with every RPC
// strategy: results must agree and halo hits must occur in each mode.
func TestHaloWithAllFetchModes(t *testing.T) {
	g := testGraph(61, 250, 1500)
	assign, err := partition.Partition(g, 2, partition.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	shards, loc, err := shard.BuildWithOptions(g, assign, 2, shard.BuildOptions{CacheHaloRows: true})
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*StorageServer, 2)
	addrs := make([]string, 2)
	for i := range servers {
		servers[i] = NewStorageServer(shards[i], loc)
		addrs[i], err = servers[i].Start()
		if err != nil {
			t.Fatal(err)
		}
		defer servers[i].Close()
	}
	clients := make([]*rpc.Client, 2)
	c1, err := rpc.Dial(addrs[1], rpc.LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	clients[1] = c1
	st := NewDistGraphStorage(0, shards[0], loc, clients)

	var ref map[int32]float64
	for _, mode := range []FetchMode{FetchSingle, FetchBatch, FetchBatchCompress} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		m, stats, err := RunSSPPR(context.Background(), st, 1, cfg, nil)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if stats.HaloRows == 0 {
			t.Fatalf("mode %v: halo cache unused", mode)
		}
		scores := ScoresGlobal(st, m)
		if ref == nil {
			ref = scores
			continue
		}
		for v, rv := range ref {
			if math.Abs(scores[v]-rv) > 5e-4 {
				t.Fatalf("mode %v node %d: %v vs %v", mode, v, scores[v], rv)
			}
		}
	}
}

// Property: TopK equals sorting the full score set and truncating, for any
// random score map.
func TestQuickTopKMatchesSort(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewSSPPR(0, 0, DefaultConfig())
		n := rng.Intn(200)
		type kv struct {
			k pmap.Key
			v float64
		}
		var all []kv
		seen := map[pmap.Key]bool{}
		for i := 0; i < n; i++ {
			key := pmap.Key{Local: int32(rng.Intn(50)), Shard: int32(rng.Intn(3))}
			if seen[key] {
				continue
			}
			seen[key] = true
			v := rng.Float64()
			m.p.Set(key, v)
			all = append(all, kv{key, v})
		}
		k := int(kRaw%20) + 1
		got := m.TopK(k)
		sort.Slice(all, func(i, j int) bool {
			if all[i].v != all[j].v {
				return all[i].v > all[j].v
			}
			if all[i].k.Shard != all[j].k.Shard {
				return all[i].k.Shard < all[j].k.Shard
			}
			return all[i].k.Local < all[j].k.Local
		})
		want := k
		if want > len(all) {
			want = len(all)
		}
		if len(got) != want {
			return false
		}
		for i := range got {
			if got[i].Key != all[i].k || got[i].Score != all[i].v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTensorConfigDispatchBudget sanity-checks the dispatch spin: n ops at
// d duration cost at least n*d wall time.
func TestTensorConfigDispatchBudget(t *testing.T) {
	cfg := TensorBaselineConfig()
	if cfg.TensorDispatch <= 0 {
		t.Fatal("baseline config has no dispatch cost")
	}
	zero := DefaultConfig()
	if zero.TensorDispatch != 0 {
		t.Fatal("engine default must not pay dispatch cost")
	}
	// dispatch(0) and zero-duration dispatch are no-ops.
	zero.dispatch(100)
	cfg.dispatch(0)
}

func TestGetShardStatsLocalAndRemote(t *testing.T) {
	g := testGraph(62, 200, 1200)
	storages, shards, _, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	local, err := storages[0].GetShardStats(0)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := storages[0].GetShardStats(1)
	if err != nil {
		t.Fatal(err)
	}
	if local.ShardID != 0 || remote.ShardID != 1 {
		t.Fatalf("ids: %d %d", local.ShardID, remote.ShardID)
	}
	if int(local.NumCore) != shards[0].NumCore() || int(remote.NumCore) != shards[1].NumCore() {
		t.Fatal("core counts wrong")
	}
	if local.NumEntries+remote.NumEntries != g.NumEdges() {
		t.Fatalf("entries %d + %d != %d", local.NumEntries, remote.NumEntries, g.NumEdges())
	}
	if remote.RemoteFrac <= 0 || remote.AvgOutDegree <= 0 || remote.MemoryBytes <= 0 {
		t.Fatalf("remote stats empty: %+v", remote)
	}
	if local.NumShards != 2 {
		t.Fatal("NumShards")
	}
}

func TestIsolatedSourceDistributed(t *testing.T) {
	// A source with no out-edges: the query ends after one iteration with
	// pi(source) = alpha.
	g, _ := graph.FromEdges(4, []graph.Edge{
		{Src: 1, Dst: 2, Weight: 1}, {Src: 2, Dst: 1, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1}, {Src: 3, Dst: 2, Weight: 1},
	})
	shards, loc, err := shard.Build(g, partition.Assignment{0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewStorageServer(shards[1], loc)
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := rpc.Dial(addr, rpc.LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	clients := make([]*rpc.Client, 2)
	clients[1] = cl
	st := NewDistGraphStorage(0, shards[0], loc, clients)
	// Global node 0 is isolated and lives on shard 0 with local ID 0.
	m, stats, err := RunSSPPR(context.Background(), st, 0, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	scores := ScoresGlobal(st, m)
	if len(scores) != 1 || math.Abs(scores[0]-0.462) > 1e-12 {
		t.Fatalf("scores = %v", scores)
	}
	if stats.Iterations != 1 {
		t.Fatalf("iterations = %d", stats.Iterations)
	}
}

func TestRunSSPPRTopKZero(t *testing.T) {
	g := testGraph(63, 100, 600)
	storages, _, _, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	top, _, err := RunSSPPRTopK(context.Background(), storages[0], 0, 0, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if top != nil {
		t.Fatalf("topK(0) = %v", top)
	}
}
