package core

import (
	"container/heap"
	"context"

	"pprengine/internal/metrics"
	"pprengine/internal/pmap"
)

// Top-K SSPPR — the form most GNN samplers consume (ShaDow takes the top-K
// PPR vertices per ego node, paper §2.1.1 and §4.5).

// ScoredNode is one (node, score) result.
type ScoredNode struct {
	Key   pmap.Key
	Score float64
}

type scoredHeap []ScoredNode

func (h scoredHeap) Len() int { return len(h) }
func (h scoredHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score // min-heap on score
	}
	if h[i].Key.Shard != h[j].Key.Shard {
		return h[i].Key.Shard > h[j].Key.Shard
	}
	return h[i].Key.Local > h[j].Key.Local
}
func (h scoredHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *scoredHeap) Push(x any)   { *h = append(*h, x.(ScoredNode)) }
func (h *scoredHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h scoredHeap) worse(s ScoredNode) bool {
	t := h[0]
	if s.Score != t.Score {
		return s.Score < t.Score
	}
	if s.Key.Shard != t.Key.Shard {
		return s.Key.Shard > t.Key.Shard
	}
	return s.Key.Local > t.Key.Local
}

// TopK selects the k highest-scored nodes of a finished query via a bounded
// min-heap (O(n log k)), descending by score with deterministic tie-breaks.
func (m *SSPPR) TopK(k int) []ScoredNode {
	if k <= 0 {
		return nil
	}
	h := make(scoredHeap, 0, k+1)
	m.RangeScores(func(key pmap.Key, v float64) bool {
		s := ScoredNode{key, v}
		if len(h) < k {
			heap.Push(&h, s)
		} else if h.worse(s) {
			// s is not better than the current minimum; skip.
		} else {
			h[0] = s
			heap.Fix(&h, 0)
		}
		return true
	})
	out := make([]ScoredNode, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(ScoredNode)
	}
	return out
}

// RunSSPPRTopK runs a full SSPPR query under ctx and returns the k
// highest-scored nodes in descending score order.
func RunSSPPRTopK(ctx context.Context, g *DistGraphStorage, sourceLocal int32, k int, cfg Config, bd *metrics.Breakdown) ([]ScoredNode, QueryStats, error) {
	m, stats, err := RunSSPPR(ctx, g, sourceLocal, cfg, bd)
	if err != nil {
		return nil, stats, err
	}
	return m.TopK(k), stats, nil
}
