package core

import (
	"context"
	"fmt"

	"pprengine/internal/metrics"
)

// RunRandomWalk performs fixed-length weighted random walks from the given
// root vertices (core vertices of g's shard), following the distributed
// Random Walk loop of Figure 4: at every step the current positions are
// masked by destination shard and one batched sample_one_neighbor request
// goes to each shard.
//
// The returned summary is [len(roots)][walkLen+1] global node IDs, starting
// with each root. A walk that reaches a vertex with no out-edges stays
// there (the remaining steps repeat its ID). ctx bounds the whole batch of
// walks: it is checked before every step and on every remote wait.
func RunRandomWalk(ctx context.Context, g *DistGraphStorage, rootLocals []int32, walkLen int, seed int64, bd *metrics.Breakdown) ([][]int32, error) {
	n := len(rootLocals)
	summary := make([][]int32, n)
	curLocal := make([]int32, n)
	curShard := make([]int32, n)
	dead := make([]bool, n)
	for i, l := range rootLocals {
		if err := g.Local.CheckLocal(l); err != nil {
			return nil, err
		}
		gid := int32(g.Locator.Global(g.ShardID, l))
		summary[i] = make([]int32, 0, walkLen+1)
		summary[i] = append(summary[i], gid)
		curLocal[i] = l
		curShard[i] = g.ShardID
	}
	idxByShard := make([][]int32, g.NumShards) // walk indices grouped by shard
	localsByShard := make([][]int32, g.NumShards)
	for step := 0; step < walkLen; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for j := range idxByShard {
			idxByShard[j] = idxByShard[j][:0]
			localsByShard[j] = localsByShard[j][:0]
		}
		alive := 0
		for i := 0; i < n; i++ {
			if dead[i] {
				continue
			}
			alive++
			sh := curShard[i]
			idxByShard[sh] = append(idxByShard[sh], int32(i))
			localsByShard[sh] = append(localsByShard[sh], curLocal[i])
		}
		if alive == 0 {
			// Every walk hit a dead end; pad the summaries and stop.
			for i := 0; i < n; i++ {
				for len(summary[i]) < walkLen+1 {
					summary[i] = append(summary[i], summary[i][len(summary[i])-1])
				}
			}
			break
		}
		// Issue one batched request per shard, remote ones first.
		futs := make([]*SampleFuture, g.NumShards)
		stopIssue := bd.Start(metrics.PhaseRemoteFetch)
		for j := int32(0); j < g.NumShards; j++ {
			if j == g.ShardID || len(localsByShard[j]) == 0 {
				continue
			}
			futs[j] = g.SampleOneNeighbor(ctx, j, localsByShard[j], seed+int64(step)*7919+int64(j))
		}
		stopIssue()
		if len(localsByShard[g.ShardID]) > 0 {
			stopLocal := bd.Start(metrics.PhaseLocalFetch)
			futs[g.ShardID] = g.SampleOneNeighbor(ctx, g.ShardID, localsByShard[g.ShardID], seed+int64(step)*7919+int64(g.ShardID))
			stopLocal()
		}
		for j := int32(0); j < g.NumShards; j++ {
			if futs[j] == nil {
				continue
			}
			var stop func()
			if j == g.ShardID {
				stop = bd.Start(metrics.PhaseLocalFetch)
			} else {
				stop = bd.Start(metrics.PhaseRemoteFetch)
			}
			resp, err := futs[j].WaitCtx(ctx)
			stop()
			if err != nil {
				return nil, fmt.Errorf("core: random walk step %d shard %d: %w", step, j, err)
			}
			if len(resp.Locals) != len(idxByShard[j]) {
				return nil, fmt.Errorf("core: random walk response size mismatch")
			}
			for k, wi := range idxByShard[j] {
				if resp.Locals[k] < 0 {
					dead[wi] = true
					summary[wi] = append(summary[wi], summary[wi][len(summary[wi])-1])
					continue
				}
				curLocal[wi] = resp.Locals[k]
				curShard[wi] = resp.Shards[k]
				summary[wi] = append(summary[wi], resp.Globals[k])
			}
		}
	}
	// Pad any dead walks that ended early in the final iterations.
	for i := 0; i < n; i++ {
		for len(summary[i]) < walkLen+1 {
			summary[i] = append(summary[i], summary[i][len(summary[i])-1])
		}
	}
	return summary, nil
}
