// Package core implements the paper's primary contribution: the distributed
// graph engine. It contains
//
//   - the Graph Storage server (the per-machine RPC endpoint over a shard),
//   - DistGraphStorage, the per-compute-process handle that unifies local
//     shared-memory access with remote RPC access behind one API
//     (get_neighbor_infos / sample_one_neighbor, Figure 4),
//   - the SSPPR state object with its pop/push operators over the parallel
//     map (§3.3),
//   - the distributed SSPPR driver implementing the batched, compressed,
//     overlapped iteration loop (§3.2.3),
//   - the tensor-based distributed Forward Push baseline ("PyTorch Tensor"),
//   - the distributed Random Walk primitive.
package core

import (
	"context"
	"errors"
	"runtime"
	"time"

	"pprengine/internal/admit"
	"pprengine/internal/agg"
	"pprengine/internal/rpc"
)

// FetchMode selects the RPC request strategy — the axis of the Table 3
// ablation.
type FetchMode int

const (
	// FetchSingle issues one request per activated vertex (the "Single"
	// baseline; no batching).
	FetchSingle FetchMode = iota
	// FetchBatch batches per destination shard but ships responses in the
	// uncompressed list-of-lists format ("+Batch").
	FetchBatch
	// FetchBatchCompress batches and compresses responses into CSR form
	// ("+Compress"). This is the engine default.
	FetchBatchCompress
)

// String returns the ablation row label for the mode.
func (m FetchMode) String() string {
	switch m {
	case FetchSingle:
		return "Single"
	case FetchBatch:
		return "+Batch"
	case FetchBatchCompress:
		return "+Compress"
	default:
		return "FetchMode(?)"
	}
}

// Config controls one SSPPR computation.
type Config struct {
	// Alpha is the teleport probability (paper default 0.462).
	Alpha float64
	// Eps is the residual threshold (paper default 1e-6).
	Eps float64
	// Mode is the RPC fetch strategy.
	Mode FetchMode
	// Overlap overlaps local fetch+push with in-flight remote fetches
	// ("+Overlap").
	Overlap bool
	// PushWorkers is the thread count for the multi-threaded push.
	// <= 0 means GOMAXPROCS.
	PushWorkers int
	// PushThreshold is the batch size above which push goes multi-threaded
	// (paper §3.3's "simple strategy"). <= 0 means 64.
	PushThreshold int
	// LockedPush switches the push operator from the owner-compute
	// (lock-eliminated) scheme to plain per-submap locking; an extra
	// ablation axis.
	LockedPush bool
	// QueryTimeout bounds one query's wall-clock time: when > 0 the driver
	// derives a deadline from it (on top of whatever deadline the caller's
	// context already carries) and the query aborts with
	// context.DeadlineExceeded once it expires. Zero means no per-query
	// deadline beyond the caller's context.
	QueryTimeout time.Duration
	// Retry enables bounded retries of transient transport failures on the
	// sequential FetchSingle path (the batched modes share one in-flight
	// future per shard and do not retry). Retry.MaxAttempts == 0 disables
	// retries; see rpc.RetryPolicy for the backoff parameters.
	Retry rpc.RetryPolicy
	// CacheBytes is the byte budget for the machine-wide dynamic cache of
	// remote neighbor rows (internal/cache): decoded rows are kept in a
	// sharded LRU and concurrent fetches of the same vertex are coalesced
	// into one RPC. 0 (the default) disables the cache, preserving the
	// paper's ablation numbers exactly. The cache itself lives on
	// DistGraphStorage (it is shared machine state, like the shard);
	// cluster/deploy construction reads this knob to build and attach it.
	CacheBytes int64
	// AggWindow, when > 0 (or when AggRows > 0), enables the cross-query
	// RPC fetch aggregator (internal/agg): concurrent queries' remote
	// fetches bound for the same destination shard are coalesced into one
	// wire request, flushed immediately when the link is idle and otherwise
	// after this window. 0/0 (the default) disables aggregation, preserving
	// the per-query RPC behavior — and every ablation number — exactly.
	// Like CacheBytes, the knob is read at construction time (cluster /
	// deploy) to build machine-shared aggregators.
	AggWindow time.Duration
	// AggRows caps the rows of one aggregated request: reaching it flushes
	// the pending batch at once. Setting only AggRows also enables
	// aggregation (the window falls back to the aggregator default).
	AggRows int
	// FeatCacheBytes is the byte budget for the machine-wide cache of
	// remote feature rows (cache.FeatureCache) backing the GNN serving
	// path. 0 (the default) disables it. Like CacheBytes, the knob is read
	// at construction time (cluster / deploy) to build and attach the
	// machine-shared cache.
	FeatCacheBytes int64
	// FeatAdmitMass is the feature cache's admission threshold: a fetched
	// row is cached only when the highest PPR mass among the queries that
	// requested it reaches this value (Kaler et al.'s probabilistic
	// caching). 0 admits every fetched row. Ignored when FeatCacheBytes
	// is 0. Feature-fetch aggregation shares the AggWindow/AggRows knobs.
	FeatAdmitMass float64
	// Affinity routes a query's pop/push compute through a shard-affinity
	// worker pool: PushWorkers long-lived goroutines, each owning a fixed
	// set of pmap stripes (worker w owns stripes s with s % workers == w),
	// over open-addressed flat probe tables instead of the mutex-striped Go
	// maps. A stripe's Pop scan and Push applies then stay on one goroutine
	// across rounds instead of being re-sharded through pushOwned's
	// transient fork-join goroutines, and the inner loops run branch-light
	// with no per-submap map overhead (DESIGN.md §5j). Scores are bitwise
	// identical to the default engine under DeterministicPop — every push
	// path claims all row residuals before applying any neighbor delta, in
	// global row order. Default off, preserving the paper's ablation
	// numbers' allocation profile exactly.
	Affinity bool
	// DeterministicPop sorts each Pop round's activated vertices by
	// (shard, local) before pushing. Pop normally drains Go maps, whose
	// iteration order is randomized, so float accumulation order — and
	// scores at round-off level — vary run to run. With DeterministicPop
	// (plus PushWorkers=1) a query's scores are bitwise reproducible, which
	// is how tests isolate transport changes (e.g. fetch aggregation) from
	// engine noise. Default off: the sort costs O(k log k) per round and the
	// paper's numbers do not pay it.
	DeterministicPop bool
	// ZeroCopy routes remote fetches through the zero-copy hot path: RPC
	// response payloads stay in pooled buffers, decoders return views that
	// alias them (or land in a reusable arena), and each machine decodes a
	// remote row exactly once — the aggregator demux and the cache
	// single-flight fill share the one decoded representation. Buffers return
	// to their pool when the consuming future is released (DESIGN.md §5h).
	// Off, every response is copy-decoded onto the heap — the pre-pooling
	// allocation profile, kept as the -exp hotpath ablation baseline.
	// DefaultConfig enables it.
	ZeroCopy bool
	// Tenant identifies the quota bucket this query draws from when the
	// machine runs an admission controller ("" is the shared untenanted
	// bucket). Threaded from pprquery -tenant / pprserve /infer requests.
	Tenant string
	// Priority orders the admission wait queue: higher runs first, and a
	// higher-priority arrival may evict a lower-priority waiter from a full
	// queue. 0 is the default band.
	Priority int
	// AdmitMaxInFlight, when > 0, enables the admission controller
	// (internal/admit): at most this many queries execute concurrently on
	// the machine, excess queries wait in a bounded priority queue, and
	// queries that cannot meet their deadline — or exceed their tenant's
	// quota — are shed early with a typed admit.ErrShed instead of timing
	// out late. Like CacheBytes, the knob is read at construction time
	// (cluster / deploy) to build the machine-shared controller; 0 (the
	// default) disables admission entirely.
	AdmitMaxInFlight int
	// AdmitMaxQueue bounds the admission wait queue (0 = controller default
	// 64). Ignored when AdmitMaxInFlight is 0.
	AdmitMaxQueue int
	// AdmitTenantRate / AdmitTenantBurst give every tenant a token bucket of
	// that sustained rate (queries/second) and burst capacity. Rate 0
	// disables per-tenant quotas; burst 0 defaults to max(rate, 1).
	AdmitTenantRate  float64
	AdmitTenantBurst float64
	// Hedge, when replication is on, routes remote fetches through a hedger
	// (admit.Hedger): a fetch whose primary replica has not answered within
	// a latency-percentile-derived delay is also issued to a healthy replica
	// and the first response wins. Construction-time knob like the admission
	// fields. HedgeDelay, when > 0, fixes the hedge delay instead of
	// deriving it from observed primary latencies.
	Hedge      bool
	HedgeDelay time.Duration
	// PinnedEpoch pins every fetch of the query to one mutation epoch of the
	// delta tier (internal/delta): local reads, halo rows, cached rows, and
	// remote fetches all resolve the graph as of this epoch, so a query runs
	// against one consistent view while mutations land concurrently. 0 — the
	// default — reads the static base graph through the legacy paths,
	// byte-for-byte. The driver normally manages pinning itself (the admission
	// grant's epoch, else the store's current epoch, pinned for the query's
	// lifetime); a caller setting this field owns the pin. Epoch-pinned remote
	// fetches require FetchBatchCompress (the CSR hot path) — the Single/LoL
	// ablation baselines predate the mutation tier and reject a non-zero
	// epoch.
	PinnedEpoch uint64
	// IncrementalExact forces the incremental SSPPR path
	// (RunSSPPRIncrementalTopK) to fall back to a full recompute whenever the
	// cached query state overlaps the mutated-vertex set, instead of seeding a
	// corrected re-push. The footprint-disjoint fast path is bitwise-identical
	// to a fresh run either way; with this knob the overlapping case is too
	// (at full-run cost), which is how tests pin down exactness. Default off:
	// overlapping sources re-push from the mutation frontier, which converges
	// to the same eps-approximation guarantee much faster.
	IncrementalExact bool
	// TensorDispatch simulates the per-operator dispatch latency of a
	// Python tensor library, charged by the tensor-based baselines for
	// every small tensor operation they issue (masking, gather, scatter,
	// ... — roughly 6 ops per pushed row). Real PyTorch CPU dispatch costs
	// ~2-10µs per op; compiled Go has none, so without this term the
	// baseline would be unrealistically fast relative to the system the
	// paper measured. Zero disables the model. Ignored by the engine.
	TensorDispatch time.Duration
}

// DefaultConfig returns the paper's default configuration.
func DefaultConfig() Config {
	return Config{
		Alpha:         0.462,
		Eps:           1e-6,
		Mode:          FetchBatchCompress,
		Overlap:       true,
		PushWorkers:   runtime.GOMAXPROCS(0),
		PushThreshold: 64,
		ZeroCopy:      true,
	}
}

func (c *Config) pushWorkers() int {
	if c.PushWorkers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.PushWorkers
}

func (c *Config) pushThreshold() int {
	if c.PushThreshold <= 0 {
		return 64
	}
	return c.PushThreshold
}

// AggEnabled reports whether the config asks for cross-query fetch
// aggregation.
func (c *Config) AggEnabled() bool { return c.AggWindow > 0 || c.AggRows > 0 }

// AdmitEnabled reports whether the config asks for query admission control.
func (c *Config) AdmitEnabled() bool { return c.AdmitMaxInFlight > 0 }

// AdmitOptions converts the config's admission knobs to admit.Options.
func (c *Config) AdmitOptions() admit.Options {
	return admit.Options{
		MaxInFlight: c.AdmitMaxInFlight,
		MaxQueue:    c.AdmitMaxQueue,
		TenantRate:  c.AdmitTenantRate,
		TenantBurst: c.AdmitTenantBurst,
	}
}

// HedgeOptions converts the config's hedging knobs to admit.HedgeOptions.
func (c *Config) HedgeOptions() admit.HedgeOptions {
	return admit.HedgeOptions{Delay: c.HedgeDelay}
}

// AggOptions converts the config's aggregation knobs to agg.Options.
func (c *Config) AggOptions() agg.Options {
	return agg.Options{Window: c.AggWindow, MaxRows: c.AggRows, ZeroCopy: c.ZeroCopy}
}

// TensorBaselineConfig is DefaultConfig plus the tensor-library dispatch
// model at a PyTorch-CPU-calibrated 5µs per small operation. Experiments use
// it for the "PyTorch Tensor" competitor.
func TensorBaselineConfig() Config {
	c := DefaultConfig()
	c.TensorDispatch = 5 * time.Microsecond
	return c
}

// applyQueryTimeout derives the query's context: the caller's ctx plus the
// config's per-query deadline when one is set.
func (c *Config) applyQueryTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.QueryTimeout > 0 {
		return context.WithTimeout(ctx, c.QueryTimeout)
	}
	return ctx, func() {}
}

// isCtxErr reports whether err is a cancellation or deadline expiry —
// anywhere in its chain, so wrapped fetch errors count too.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// dispatch burns CPU for n simulated tensor-op dispatches. A busy spin, not
// a sleep: the interpreter overhead being modeled is real CPU work that
// contends with everything else on the machine.
func (c *Config) dispatch(n int) {
	if c.TensorDispatch <= 0 || n <= 0 {
		return
	}
	deadline := time.Now().Add(time.Duration(n) * c.TensorDispatch)
	for time.Now().Before(deadline) {
	}
}
