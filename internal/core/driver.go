package core

import (
	"context"

	"pprengine/internal/admit"
	"pprengine/internal/metrics"
	"pprengine/internal/obs"
	"pprengine/internal/pmap"
	"pprengine/internal/shard"
)

// QueryStats describes one completed SSPPR query.
type QueryStats struct {
	Iterations     int
	Pushes         int64
	LocalRows      int64 // vertices fetched from the local shard
	RemoteRows     int64 // vertices fetched over RPC (cache hits excluded)
	HaloRows       int64 // remote vertices served by the local halo row cache
	TouchedNodes   int
	Retries        int64 // transient-error RPC retries taken by this query
	Timeouts       int64 // 1 when the query was cut short by deadline/cancel
	CacheHits      int64 // remote rows served by the dynamic neighbor-row cache
	CacheCoalesced int64 // rows that joined another query's in-flight fetch
	RPCRequests    int64 // wire requests attributed to this query (see InfoFuture.RPCRequests)
	RequestBytes   int64 // request payload bytes attributed to this query
}

// RunSSPPR executes one distributed SSPPR query for the source vertex
// (sourceLocal, g.ShardID), following the iteration loop of Figure 4:
//
//	pop activated vertices → mask by destination shard → issue remote
//	fetches → fetch + push local → wait + push remote.
//
// With cfg.Overlap the local fetch and push run while remote responses are
// in flight; without it all fetches complete before any push. bd, when
// non-nil, accumulates the per-phase timing breakdown.
//
// The query honors ctx (plus cfg.QueryTimeout when set): cancellation is
// checked between push iterations and on every remote wait, so a cancelled
// query stops doing local work too and returns ctx's error. Aborted queries
// report Timeouts=1 in their stats and bump metrics.QueryTimeouts.
func RunSSPPR(ctx context.Context, g *DistGraphStorage, sourceLocal int32, cfg Config, bd *metrics.Breakdown) (*SSPPR, QueryStats, error) {
	ctx, cancel := cfg.applyQueryTimeout(ctx)
	defer cancel()
	// Root span of the query's trace. A context already carrying a trace
	// (owner-compute dispatch: the coordinator sampled this query and its
	// context crossed the wire) joins it; otherwise this machine makes the
	// head-based sampling decision.
	root := startQuerySpan(g.Tracer, ctx)
	ctx = obs.ContextWith(ctx, root.Context())
	// Admission gate: with a controller attached the query first claims an
	// execution slot — or is shed (admit.ErrShed) / queued under its
	// priority. The gate sits AFTER applyQueryTimeout so the deadline
	// feasibility check sees the query's real budget, and inside the root
	// span so traces show the "admit:wait" time a saturated machine adds.
	var grant *admit.Grant
	if g.Admit != nil {
		waitSpan := g.Tracer.StartSpan(obs.FromContext(ctx), "admit:wait")
		var aerr error
		grant, aerr = g.Admit.Acquire(ctx, admit.Request{Tenant: cfg.Tenant, Priority: cfg.Priority})
		waitSpan.SetErr(aerr != nil)
		waitSpan.End()
		if aerr != nil {
			var stats QueryStats
			if isCtxErr(aerr) {
				stats.Timeouts++
				metrics.QueryTimeouts.Inc(1)
			}
			root.SetErr(true)
			root.End()
			return nil, stats, aerr
		}
	}
	// Epoch resolution for mutable deployments: the query pins ONE mutation
	// epoch for its whole lifetime, so every fetch — local, remote, halo,
	// cached — reads the same consistent snapshot while writers race ahead.
	// Precedence: a caller-set cfg.PinnedEpoch (the caller owns that pin),
	// else the epoch the admission grant stamped (the grant owns it, released
	// with the slot), else pin the store's current epoch here. Epoch 0 — a
	// static deployment, or no mutations yet — keeps the legacy path exactly.
	if cfg.PinnedEpoch == 0 && g.Delta != nil {
		if grant != nil && grant.Epoch != 0 {
			cfg.PinnedEpoch = grant.Epoch
		} else if e := g.Delta.PinCurrent(); e != 0 {
			cfg.PinnedEpoch = e
			defer g.Delta.Unpin(e)
		}
	}
	m, stats, err := runSSPPR(ctx, g, sourceLocal, cfg, bd)
	grant.Release(err == nil) // nil-safe; records the service time on success
	if err != nil && isCtxErr(err) {
		stats.Timeouts++
		metrics.QueryTimeouts.Inc(1)
	}
	root.SetErr(err != nil)
	root.End()
	return m, stats, err
}

// startQuerySpan opens the "query" span: as a child when ctx already carries
// a sampled trace, as a new sampled-or-not root otherwise.
func startQuerySpan(tr *obs.Tracer, ctx context.Context) obs.ActiveSpan {
	if sc := obs.FromContext(ctx); sc.Valid() {
		return tr.StartSpan(sc, "query")
	}
	return tr.StartTrace("query")
}

func runSSPPR(ctx context.Context, g *DistGraphStorage, sourceLocal int32, cfg Config, bd *metrics.Breakdown) (*SSPPR, QueryStats, error) {
	m := NewSSPPR(sourceLocal, g.ShardID, cfg)
	stats, err := runSSPPRFrom(ctx, g, m, cfg, bd)
	return m, stats, err
}

// runSSPPRFrom drives the pop/fetch/push loop on an already-constructed
// state until the residual frontier drains. It is the shared engine of a
// fresh run (runSSPPR) and an incremental re-push (RunSSPPRIncremental),
// which seeds m with cached reserves/residuals plus a mutation-correction
// frontier before resuming the identical loop.
func runSSPPRFrom(ctx context.Context, g *DistGraphStorage, m *SSPPR, cfg Config, bd *metrics.Breakdown) (QueryStats, error) {
	defer m.Close() // stops the affinity worker pool; the score maps stay readable
	var stats QueryStats
	// Phase spans mirror bd's phases for sampled queries; tr is nil-safe and
	// qsc is zero for unsampled ones, making every StartSpan below a no-op.
	tr, qsc := g.Tracer, obs.FromContext(ctx)
	// Scratch buffers reused across iterations: the per-shard grouping, the
	// halo diversion slices, and the pending-fetch list. Pop's output is
	// likewise reused via scratch on the SSPPR state. Each is reset, never
	// reallocated, per round — the driver loop runs allocation-light.
	byShard := make([][]int32, g.NumShards)
	type pending struct {
		shard int32
		fut   *InfoFuture
	}
	var remotes []pending
	var haloVPs []shard.VertexProp
	var haloLocals, haloShards []int32
	// shardScratch backs sameShard's output; one grow-only slice instead of a
	// fresh allocation per push call.
	var shardScratch []int32
	sameShard := func(n int, shard int32) []int32 {
		if cap(shardScratch) < n {
			shardScratch = make([]int32, n)
		}
		s := shardScratch[:n]
		for i := range s {
			s[i] = shard
		}
		return s
	}
	for {
		// Deadline check at the top of every push iteration: a cancelled
		// query must stop spending CPU on pop/push, not just on fetches.
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		stopPop := bd.Start(metrics.PhasePop)
		popSpan := tr.StartSpan(qsc, "pop")
		locals, shards := m.Pop()
		popSpan.End()
		stopPop()
		if len(locals) == 0 {
			break
		}
		// Mask construction: group the activated vertices by destination
		// shard (the tensor-mask step of Figure 4). When the shard caches
		// halo rows (§3.2.1's higher-hop configuration), remote vertices
		// with a cached row are diverted to a shared-memory halo batch.
		for i := range byShard {
			byShard[i] = byShard[i][:0]
		}
		self := g.ShardID
		haloVPs = haloVPs[:0]
		haloLocals, haloShards = haloLocals[:0], haloShards[:0]
		useHalo := g.Local.HasHaloRows()
		epoch := cfg.PinnedEpoch
		for i, l := range locals {
			sh := shards[i]
			if useHalo && sh != self {
				if vp, ok := g.Local.HaloRow(sh, l); ok {
					if epoch != 0 {
						// Epoch-pinned queries must not read a stale halo copy:
						// the delta store re-resolves a mutated row and patches
						// the degree columns of an unmutated one — still a
						// shared-memory read, no RPC.
						vp = g.Delta.PatchHalo(vp, sh, l, epoch)
					}
					haloVPs = append(haloVPs, vp)
					haloLocals = append(haloLocals, l)
					haloShards = append(haloShards, sh)
					continue
				}
			}
			byShard[sh] = append(byShard[sh], l)
		}

		// Issue remote fetches first so they progress in the background.
		remotes = remotes[:0]
		stopIssue := bd.Start(metrics.PhaseRemoteFetch)
		for j := int32(0); j < g.NumShards; j++ {
			if j == self || len(byShard[j]) == 0 {
				continue
			}
			fut := g.GetNeighborInfos(ctx, j, byShard[j], cfg)
			remotes = append(remotes, pending{j, fut})
			// With the dynamic cache, rows served from shared memory or a
			// coalesced in-flight fetch are not RPC traffic.
			stats.RemoteRows += fut.RemoteRows()
			stats.CacheHits += fut.CacheHits()
			stats.CacheCoalesced += fut.CacheCoalesced()
		}
		stopIssue()

		pushLocal := func() error {
			if len(haloVPs) > 0 {
				// Halo-cached rows: shared-memory fetch, like local rows.
				stats.HaloRows += int64(len(haloVPs))
				var hb NeighborBatch
				bd.Time(metrics.PhaseLocalFetch, func() { hb = VPBatch(haloVPs) })
				bd.Time(metrics.PhasePush, func() { m.Push(hb, haloLocals, haloShards) })
			}
			if len(byShard[self]) == 0 {
				return nil
			}
			var batch NeighborBatch
			var err error
			fetchSpan := tr.StartSpan(qsc, "local-fetch")
			fetchSpan.SetShard(self)
			bd.Time(metrics.PhaseLocalFetch, func() {
				fut := g.GetNeighborInfos(ctx, self, byShard[self], cfg)
				batch, err = fut.WaitCtx(ctx)
				stats.Retries += fut.Retries()
				stats.RPCRequests += fut.RPCRequests()
				stats.RequestBytes += fut.RequestBytes()
			})
			fetchSpan.SetErr(err != nil)
			fetchSpan.End()
			if err != nil {
				return err
			}
			stats.LocalRows += int64(len(byShard[self]))
			pushSpan := tr.StartSpan(qsc, "push")
			bd.Time(metrics.PhasePush, func() {
				m.Push(batch, byShard[self], sameShard(len(byShard[self]), self))
			})
			pushSpan.End()
			return nil
		}

		if cfg.Overlap {
			// Local work proceeds while remote responses are in flight.
			if err := pushLocal(); err != nil {
				return stats, err
			}
			for _, p := range remotes {
				var batch NeighborBatch
				var err error
				waitSpan := tr.StartSpan(qsc, "remote-fetch")
				waitSpan.SetShard(p.shard)
				bd.Time(metrics.PhaseRemoteFetch, func() {
					batch, err = p.fut.WaitCtx(ctx)
					stats.Retries += p.fut.Retries()
					// Wire accounting must be read after the wait: an
					// aggregated fetch only knows its share of the flush once
					// the flush resolved.
					stats.RPCRequests += p.fut.RPCRequests()
					stats.RequestBytes += p.fut.RequestBytes()
				})
				waitSpan.SetErr(err != nil)
				waitSpan.End()
				if err != nil {
					return stats, err
				}
				pushSpan := tr.StartSpan(qsc, "push")
				bd.Time(metrics.PhasePush, func() {
					m.Push(batch, byShard[p.shard], sameShard(len(byShard[p.shard]), p.shard))
				})
				pushSpan.End()
				// The push copied what it keeps; the pooled response buffer
				// backing the batch goes back to its pool.
				p.fut.Release()
			}
		} else {
			// Synchronous variant: complete every fetch before pushing.
			batches := make([]NeighborBatch, len(remotes))
			for i, p := range remotes {
				var err error
				waitSpan := tr.StartSpan(qsc, "remote-fetch")
				waitSpan.SetShard(p.shard)
				bd.Time(metrics.PhaseRemoteFetch, func() {
					batches[i], err = p.fut.WaitCtx(ctx)
					stats.Retries += p.fut.Retries()
					stats.RPCRequests += p.fut.RPCRequests()
					stats.RequestBytes += p.fut.RequestBytes()
				})
				waitSpan.SetErr(err != nil)
				waitSpan.End()
				if err != nil {
					return stats, err
				}
			}
			if err := pushLocal(); err != nil {
				return stats, err
			}
			for i, p := range remotes {
				pushSpan := tr.StartSpan(qsc, "push")
				bd.Time(metrics.PhasePush, func() {
					m.Push(batches[i], byShard[p.shard], sameShard(len(byShard[p.shard]), p.shard))
				})
				pushSpan.End()
				p.fut.Release()
			}
		}
	}
	stats.Iterations = m.Iterations
	stats.Pushes = m.Pushes
	stats.TouchedNodes = m.ScoreCount()
	return stats, nil
}

// ScoresGlobal converts a query's sparse result to global node IDs using
// the storage's locator.
func ScoresGlobal(g *DistGraphStorage, m *SSPPR) map[int32]float64 {
	out := make(map[int32]float64, m.ScoreCount())
	m.RangeScores(func(k pmap.Key, v float64) bool {
		out[int32(g.Locator.Global(k.Shard, k.Local))] = v
		return true
	})
	return out
}
