package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"pprengine/internal/graph"
	"pprengine/internal/metrics"
	"pprengine/internal/partition"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

// testDeploymentLat is testDeployment with a synthetic latency model on
// every inter-machine client — for deadline tests that need slow peers.
func testDeploymentLat(t *testing.T, g *graph.Graph, k int, lat rpc.LatencyModel) ([]*DistGraphStorage, func()) {
	t.Helper()
	assign, err := partition.Partition(g, k, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shards, loc, err := shard.Build(g, assign, k)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*StorageServer, k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		servers[i] = NewStorageServer(shards[i], loc)
		addrs[i], err = servers[i].Start()
		if err != nil {
			t.Fatal(err)
		}
	}
	var allClients []*rpc.Client
	storages := make([]*DistGraphStorage, k)
	for i := 0; i < k; i++ {
		clients := make([]*rpc.Client, k)
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			c, err := rpc.Dial(addrs[j], lat)
			if err != nil {
				t.Fatal(err)
			}
			clients[j] = c
			allClients = append(allClients, c)
		}
		storages[i] = NewDistGraphStorage(int32(i), shards[i], loc, clients)
	}
	cleanup := func() {
		for _, c := range allClients {
			c.Close()
		}
		for _, s := range servers {
			s.Close()
		}
	}
	return storages, cleanup
}

// waitGoroutines polls until the goroutine count drops back to at most
// want, failing the test if it does not within the timeout.
func waitGoroutines(t *testing.T, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines alive, want <= %d", n, want)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueryDeadlineExceeded is the issue's acceptance scenario: a query with
// a 50ms deadline against peers behind a 500ms synthetic latency must return
// context.DeadlineExceeded at roughly the deadline — not after the first
// 500ms round trip — report the timeout in its stats, and leave no
// goroutines behind once the latency-model sleeps drain.
func TestQueryDeadlineExceeded(t *testing.T) {
	baseline := runtime.NumGoroutine()
	g := testGraph(1, 300, 1800)
	storages, cleanup := testDeploymentLat(t, g, 3, rpc.LatencyModel{Base: 500 * time.Millisecond})
	timeoutsBefore := metrics.QueryTimeouts.Load()

	cfg := DefaultConfig()
	cfg.Eps = 1e-7 // enough work to guarantee remote fetches
	cfg.QueryTimeout = 50 * time.Millisecond
	start := time.Now()
	_, stats, err := RunSSPPR(context.Background(), storages[0], 0, cfg, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("query took %v; the 50ms deadline should fire well before the 500ms latency", elapsed)
	}
	if stats.Timeouts != 1 {
		t.Fatalf("stats.Timeouts = %d, want 1", stats.Timeouts)
	}
	if got := metrics.QueryTimeouts.Load() - timeoutsBefore; got < 1 {
		t.Fatalf("metrics.QueryTimeouts delta = %d, want >= 1", got)
	}

	cleanup()
	// The latency model parks one goroutine per in-flight response for
	// ~500ms; everything must drain afterwards.
	waitGoroutines(t, baseline+2, 3*time.Second)
}

// TestQueryDeadlineIsolation runs a doomed 50ms-deadline query concurrently
// with an unbounded one on the same deployment: the timeout must not disturb
// the other query.
func TestQueryDeadlineIsolation(t *testing.T) {
	g := testGraph(2, 200, 1200)
	storages, cleanup := testDeploymentLat(t, g, 2, rpc.LatencyModel{Base: 100 * time.Millisecond})
	defer cleanup()

	slowCfg := DefaultConfig()
	slowCfg.Eps = 1e-7
	slowCfg.QueryTimeout = 30 * time.Millisecond
	okCfg := DefaultConfig()
	okCfg.Eps = 1e-3 // few iterations, so the 100ms-per-round latency stays cheap

	var wg sync.WaitGroup
	var slowErr, okErr error
	var okStats QueryStats
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, slowErr = RunSSPPR(context.Background(), storages[0], 0, slowCfg, nil)
	}()
	go func() {
		defer wg.Done()
		_, okStats, okErr = RunSSPPR(context.Background(), storages[1], 0, okCfg, nil)
	}()
	wg.Wait()
	if !errors.Is(slowErr, context.DeadlineExceeded) {
		t.Fatalf("slow query err = %v, want DeadlineExceeded", slowErr)
	}
	if okErr != nil {
		t.Fatalf("concurrent query failed: %v", okErr)
	}
	if okStats.Iterations == 0 || okStats.Timeouts != 0 {
		t.Fatalf("concurrent query stats = %+v", okStats)
	}
}

// TestQueryPreCancelled: a query on an already-cancelled context does no
// work at all.
func TestQueryPreCancelled(t *testing.T) {
	g := testGraph(3, 100, 500)
	storages, cleanup := testDeploymentLat(t, g, 2, rpc.LatencyModel{})
	defer cleanup()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, stats, err := RunSSPPR(ctx, storages[0], 0, DefaultConfig(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if stats.Iterations != 0 || stats.Pushes != 0 {
		t.Fatalf("pre-cancelled query did work: %+v", stats)
	}
}

// TestRandomWalkDeadline: the per-step context check stops a random walk
// against slow peers at the deadline.
func TestRandomWalkDeadline(t *testing.T) {
	g := testGraph(4, 200, 1200)
	storages, cleanup := testDeploymentLat(t, g, 2, rpc.LatencyModel{Base: 200 * time.Millisecond})
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	roots := make([]int32, 64)
	for i := range roots {
		roots[i] = int32(i % storages[0].Local.NumCore())
	}
	start := time.Now()
	_, err := RunRandomWalk(ctx, storages[0], roots, 20, 7, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("walk took %v to honor a 50ms deadline", elapsed)
	}
}

// TestKHopDeadline: the per-hop context check stops a k-hop sample against
// slow peers at the deadline.
func TestKHopDeadline(t *testing.T) {
	g := testGraph(5, 200, 1200)
	storages, cleanup := testDeploymentLat(t, g, 2, rpc.LatencyModel{Base: 200 * time.Millisecond})
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	seeds := []int32{0, 1, 2, 3}
	_, err := RunKHopSample(ctx, storages[0], seeds, []int{5, 5}, 11, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}
