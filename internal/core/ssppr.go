package core

import (
	"sort"
	"sync"

	"pprengine/internal/pmap"
)

// SSPPR holds the state of one single-source PPR query on the machine that
// owns the source (the owner-compute rule of §3.1): the PPR map p, the
// residual map r, and the activated-vertex set, all keyed by
// (local ID, shard ID).
//
// The two operators exposed to the driver loop mirror the paper's PPR Ops:
// Pop drains the activated set; Push applies a batch of neighbor updates,
// multi-threaded when the batch is large enough.
type SSPPR struct {
	cfg       Config
	p         *pmap.Striped
	r         *pmap.Striped
	activated *pmap.ConcurrentSet

	// Pushes counts applied push operations (for parity with the
	// single-machine kernels in tests).
	Pushes int64
	// Iterations counts Pop rounds.
	Iterations int

	// Pop scratch, reused across rounds so a long query does not allocate
	// three fresh slices per iteration.
	popKeys   []pmap.Key
	popLocals []int32
	popShards []int32
}

// NewSSPPR initializes the query state for the given source vertex.
func NewSSPPR(sourceLocal, sourceShard int32, cfg Config) *SSPPR {
	m := &SSPPR{
		cfg:       cfg,
		p:         pmap.NewStriped(1024),
		r:         pmap.NewStriped(1024),
		activated: pmap.NewConcurrentSet(256),
	}
	src := pmap.Key{Local: sourceLocal, Shard: sourceShard}
	m.r.Set(src, 1)
	m.activated.Insert(src)
	return m
}

// Pop returns the current activated vertices as parallel local-ID and
// shard-ID slices and clears the set (paper §3.3). The returned slices are
// scratch owned by the SSPPR state and remain valid only until the next Pop
// call; callers that need to retain them across rounds must copy.
func (m *SSPPR) Pop() (locals, shards []int32) {
	m.popKeys = m.activated.Drain(m.popKeys[:0])
	keys := m.popKeys
	if len(keys) == 0 {
		return nil, nil
	}
	if m.cfg.DeterministicPop {
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Shard != keys[j].Shard {
				return keys[i].Shard < keys[j].Shard
			}
			return keys[i].Local < keys[j].Local
		})
	}
	m.Iterations++
	m.popLocals = m.popLocals[:0]
	m.popShards = m.popShards[:0]
	for _, k := range keys {
		m.popLocals = append(m.popLocals, k.Local)
		m.popShards = append(m.popShards, k.Shard)
	}
	return m.popLocals, m.popShards
}

// Push applies one fetched batch: batch row i holds the neighbor info of
// the source vertex (locals[i], shards[i]). It updates p and r and inserts
// newly activated vertices into the activated set.
//
// Following §3.3, the batch goes multi-threaded only above the configured
// threshold; below it a single thread avoids fork-join overhead.
func (m *SSPPR) Push(batch NeighborBatch, locals, shards []int32) {
	if batch.NumRows() != len(locals) || len(locals) != len(shards) {
		panic("core: Push batch size mismatch")
	}
	if batch.NumRows() == 0 {
		return
	}
	workers := m.cfg.pushWorkers()
	if batch.NumRows() <= m.cfg.pushThreshold() || workers <= 1 {
		m.pushSequential(batch, locals, shards)
		return
	}
	if m.cfg.LockedPush {
		m.pushLocked(batch, locals, shards, workers)
		return
	}
	m.pushOwned(batch, locals, shards, workers)
}

// claimRow atomically takes the full residual of a source vertex and
// credits its PPR value. Returns the propagating mass m (0 when the row is
// stale or a dangling node).
func (m *SSPPR) claimRow(key pmap.Key, rowWDeg float32) float64 {
	rv := m.r.Swap(key, 0)
	if rv <= 0 {
		return 0 // already claimed by an earlier batch this round
	}
	m.p.Add(key, m.cfg.Alpha*rv)
	if rowWDeg <= 0 {
		return 0 // dangling: the residual is absorbed
	}
	return (1 - m.cfg.Alpha) * rv
}

// visitResidual checks the activation condition after a residual update.
func (m *SSPPR) visitResidual(k pmap.Key, newVal, wdeg float64) {
	if newVal > m.cfg.Eps*wdeg {
		m.activated.Insert(k)
	}
}

func (m *SSPPR) pushSequential(batch NeighborBatch, locals, shards []int32) {
	// Single-threaded: use the lock-free map fast paths. No other goroutine
	// touches this query's state while the driver is in Push.
	eps := m.cfg.Eps
	for i := 0; i < batch.NumRows(); i++ {
		nl, ns, nw, nd, rowWDeg := batch.Row(i)
		key := pmap.Key{Local: locals[i], Shard: shards[i]}
		rv := m.r.SwapSeq(key, 0)
		if rv <= 0 {
			continue
		}
		m.p.AddSeq(key, m.cfg.Alpha*rv)
		if rowWDeg <= 0 {
			continue
		}
		m.Pushes++
		inv := (1 - m.cfg.Alpha) * rv / float64(rowWDeg)
		for j := range nl {
			k := pmap.Key{Local: nl[j], Shard: ns[j]}
			nv := m.r.AddSeq(k, float64(nw[j])*inv)
			if nv > eps*float64(nd[j]) {
				m.activated.InsertSeq(k)
			}
		}
	}
}

// pushLocked is the straightforward multi-threaded push: rows in parallel,
// every residual update takes its submap lock.
func (m *SSPPR) pushLocked(batch NeighborBatch, locals, shards []int32, workers int) {
	rows := batch.NumRows()
	var wg sync.WaitGroup
	var pushes int64
	var mu sync.Mutex
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= rows {
			break
		}
		hi := min(lo+chunk, rows)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			local := int64(0)
			for i := lo; i < hi; i++ {
				nl, ns, nw, nd, rowWDeg := batch.Row(i)
				mass := m.claimRow(pmap.Key{Local: locals[i], Shard: shards[i]}, rowWDeg)
				if mass == 0 {
					continue
				}
				local++
				inv := mass / float64(rowWDeg)
				for j := range nl {
					k := pmap.Key{Local: nl[j], Shard: ns[j]}
					nv := m.r.Add(k, float64(nw[j])*inv)
					m.visitResidual(k, nv, float64(nd[j]))
				}
			}
			mu.Lock()
			pushes += local
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	m.Pushes += pushes
}

// pushOwned is the lock-eliminated push of §3.3: phase 1 claims row
// residuals and materializes all neighbor deltas; phase 2 applies them with
// ApplyOwned, which partitions updates by submap index across workers so no
// locks are taken while mutating the residual map.
func (m *SSPPR) pushOwned(batch NeighborBatch, locals, shards []int32, workers int) {
	rows := batch.NumRows()
	perWorker := make([][]pmap.Update, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var pushes int64
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= rows {
			break
		}
		hi := min(lo+chunk, rows)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var ups []pmap.Update
			local := int64(0)
			for i := lo; i < hi; i++ {
				nl, ns, nw, nd, rowWDeg := batch.Row(i)
				mass := m.claimRow(pmap.Key{Local: locals[i], Shard: shards[i]}, rowWDeg)
				if mass == 0 {
					continue
				}
				local++
				inv := mass / float64(rowWDeg)
				for j := range nl {
					ups = append(ups, pmap.Update{
						Key:   pmap.Key{Local: nl[j], Shard: ns[j]},
						Delta: float64(nw[j]) * inv,
						Aux:   float64(nd[j]),
					})
				}
			}
			perWorker[w] = ups
			mu.Lock()
			pushes += local
			mu.Unlock()
		}(w, lo, hi)
	}
	wg.Wait()
	m.Pushes += pushes
	total := 0
	for _, u := range perWorker {
		total += len(u)
	}
	updates := make([]pmap.Update, 0, total)
	for _, u := range perWorker {
		updates = append(updates, u...)
	}
	m.r.ApplyOwned(updates, workers, m.visitResidual)
}

// Scores returns the computed PPR estimates. Call after the driver loop has
// drained the activated set.
func (m *SSPPR) Scores() map[pmap.Key]float64 {
	out := make(map[pmap.Key]float64, m.p.Len())
	m.p.Range(func(k pmap.Key, v float64) bool {
		out[k] = v
		return true
	})
	return out
}

// ResidualMass returns the total remaining residual (diagnostics: the
// engine's approximation error mass).
func (m *SSPPR) ResidualMass() float64 {
	s := 0.0
	m.r.Range(func(_ pmap.Key, v float64) bool {
		s += v
		return true
	})
	return s
}
