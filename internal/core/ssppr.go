package core

import (
	"sort"
	"sync"

	"pprengine/internal/metrics"
	"pprengine/internal/pmap"
)

// SSPPR holds the state of one single-source PPR query on the machine that
// owns the source (the owner-compute rule of §3.1): the PPR map p, the
// residual map r, and the activated-vertex set, all keyed by
// (local ID, shard ID).
//
// The two operators exposed to the driver loop mirror the paper's PPR Ops:
// Pop drains the activated set; Push applies a batch of neighbor updates,
// multi-threaded when the batch is large enough.
//
// Every push path uses the same two-phase semantics: first claim the full
// residual of every batch row (crediting p), then apply all neighbor deltas
// in global row order. Residual mass a row receives from earlier rows of the
// same batch therefore stays in r for a later round instead of being pushed
// immediately — both are valid eps-approximations, and the shared order makes
// the sequential, owner-compute, and affinity engines bitwise identical under
// DeterministicPop (the -exp hotpath2 gate).
//
// With cfg.Affinity the state lives in open-addressed flat tables owned by a
// long-lived worker pool (DESIGN.md §5j) instead of the mutex-striped Go
// maps; Close releases the pool (the maps stay readable).
type SSPPR struct {
	cfg       Config
	p         *pmap.Striped
	r         *pmap.Striped
	activated *pmap.ConcurrentSet

	// Affinity-engine state (cfg.Affinity): flat probe tables plus the
	// worker pool that owns their stripes. pool is nil when one worker
	// suffices — the sequential flat path needs no goroutines.
	fp         *pmap.Flat
	fr         *pmap.Flat
	fact       *pmap.FlatSet
	pool       *pmap.Pool
	affWorkers int

	// Pushes counts applied push operations (for parity with the
	// single-machine kernels in tests).
	Pushes int64
	// Iterations counts Pop rounds.
	Iterations int

	// Pop scratch, reused across rounds so a long query does not allocate
	// three fresh slices per iteration.
	popKeys   []pmap.Key
	popLocals []int32
	popShards []int32
	// popPerWorker is the affinity drain scratch: worker w drains its owned
	// stripes into popPerWorker[w].
	popPerWorker [][]pmap.Key

	// masses is the claim-phase scratch shared by the sequential paths:
	// masses[i] is row i's propagating mass, 0 for stale or dangling rows.
	masses []float64
	// Affinity push scratch, all reused across rounds: the per-owner row
	// partition, the W×W producer→destination update buckets, and the
	// per-worker push counters.
	rowsByOwner  [][]int32
	buckets      []affBucket
	workerPushes []int64
	// lastGrows is the grow-counter watermark already flushed to
	// metrics.PmapGrows.
	lastGrows int64
}

// affUpd is one materialized neighbor update in an affinity push bucket: add
// Delta to the packed key's residual, then check activation against Aux (the
// neighbor's weighted degree).
type affUpd struct {
	key   uint64
	delta float64
	aux   float64
}

// affRun marks a contiguous same-source-row run inside a bucket's update
// list, so the apply phase can merge producers by global row index without
// tagging every update.
type affRun struct {
	row int32
	n   int32
}

// affBucket carries the updates one producer worker materialized for one
// destination worker, in increasing source-row order.
type affBucket struct {
	upds []affUpd
	runs []affRun
}

// NewSSPPR initializes the query state for the given source vertex. With
// cfg.Affinity the caller owns the returned state's worker pool and must
// Close it when the query finishes (the driver does).
func NewSSPPR(sourceLocal, sourceShard int32, cfg Config) *SSPPR {
	m := newEmptySSPPR(cfg)
	src := pmap.Key{Local: sourceLocal, Shard: sourceShard}
	m.seedResidual(src, 1)
	m.activate(src)
	return m
}

// newEmptySSPPR allocates the engine state with no seeded residual — the
// incremental path (core/incremental.go) loads a cached query's reserves and
// residuals into it before resuming the driver loop.
func newEmptySSPPR(cfg Config) *SSPPR {
	m := &SSPPR{cfg: cfg}
	if cfg.Affinity {
		w := cfg.pushWorkers()
		if w > pmap.NumSubmaps {
			w = pmap.NumSubmaps
		}
		if w < 1 {
			w = 1
		}
		m.affWorkers = w
		m.fp = pmap.NewFlat(1024)
		m.fr = pmap.NewFlat(1024)
		m.fact = pmap.NewFlatSet(256)
		if w > 1 {
			m.pool = pmap.NewPool(w)
			m.popPerWorker = make([][]pmap.Key, w)
			m.rowsByOwner = make([][]int32, w)
			m.buckets = make([]affBucket, w*w)
			m.workerPushes = make([]int64, w)
		}
		return m
	}
	m.p = pmap.NewStriped(1024)
	m.r = pmap.NewStriped(1024)
	m.activated = pmap.NewConcurrentSet(256)
	return m
}

// seedScore sets the PPR reserve of one vertex (incremental seeding; call
// only before the driver loop starts).
func (m *SSPPR) seedScore(k pmap.Key, v float64) {
	if m.cfg.Affinity {
		m.fp.Set(k, v)
		return
	}
	m.p.Set(k, v)
}

// seedResidual sets the residual of one vertex (incremental seeding).
func (m *SSPPR) seedResidual(k pmap.Key, v float64) {
	if m.cfg.Affinity {
		m.fr.Set(k, v)
		return
	}
	m.r.Set(k, v)
}

// addResidual adds delta to one vertex's residual and returns the new value
// (incremental correction seeding; single-goroutine).
func (m *SSPPR) addResidual(k pmap.Key, delta float64) float64 {
	if m.cfg.Affinity {
		return m.fr.AddP(k.Packed(), delta)
	}
	return m.r.AddSeq(k, delta)
}

// residual reads one vertex's current residual (0 when absent).
func (m *SSPPR) residual(k pmap.Key) float64 {
	var v float64
	var ok bool
	if m.cfg.Affinity {
		v, ok = m.fr.Get(k)
	} else {
		v, ok = m.r.Get(k)
	}
	if !ok {
		return 0
	}
	return v
}

// activate inserts one vertex into the activated set.
func (m *SSPPR) activate(k pmap.Key) {
	if m.cfg.Affinity {
		m.fact.InsertP(k.Packed())
		return
	}
	m.activated.Insert(k)
}

// Close stops the affinity worker pool, if any. The score and residual maps
// stay readable (Scores, TopK, ResidualMass); only Push/Pop must not be
// called afterwards. No-op for the default engine, idempotent either way.
func (m *SSPPR) Close() {
	if m.pool != nil {
		m.pool.Close()
		m.pool = nil
	}
}

// Pop returns the current activated vertices as parallel local-ID and
// shard-ID slices and clears the set (paper §3.3). The returned slices are
// scratch owned by the SSPPR state and remain valid only until the next Pop
// call; callers that need to retain them across rounds must copy.
func (m *SSPPR) Pop() (locals, shards []int32) {
	if m.cfg.Affinity {
		m.popKeys = m.drainAffinity(m.popKeys[:0])
	} else {
		m.popKeys = m.activated.Drain(m.popKeys[:0])
	}
	keys := m.popKeys
	if len(keys) == 0 {
		return nil, nil
	}
	if m.cfg.DeterministicPop {
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Shard != keys[j].Shard {
				return keys[i].Shard < keys[j].Shard
			}
			return keys[i].Local < keys[j].Local
		})
	}
	m.Iterations++
	m.popLocals = m.popLocals[:0]
	m.popShards = m.popShards[:0]
	for _, k := range keys {
		m.popLocals = append(m.popLocals, k.Local)
		m.popShards = append(m.popShards, k.Shard)
	}
	return m.popLocals, m.popShards
}

// drainAffinity empties the flat activated set: each pool worker scans only
// its owned stripes (the dense insertion lists make the scan branch-light),
// and the per-worker buffers are concatenated in worker order.
func (m *SSPPR) drainAffinity(dst []pmap.Key) []pmap.Key {
	if m.pool == nil {
		return m.fact.Drain(dst)
	}
	w := m.affWorkers
	m.pool.Do(func(i int) {
		buf := m.popPerWorker[i][:0]
		for si := i; si < pmap.NumSubmaps; si += w {
			buf = m.fact.DrainStripe(si, buf)
		}
		m.popPerWorker[i] = buf
	})
	for _, buf := range m.popPerWorker {
		dst = append(dst, buf...)
	}
	return dst
}

// Push applies one fetched batch: batch row i holds the neighbor info of
// the source vertex (locals[i], shards[i]). It updates p and r and inserts
// newly activated vertices into the activated set.
//
// Following §3.3, the batch goes multi-threaded only above the configured
// threshold; below it a single thread avoids fork-join (or pool-round)
// overhead.
func (m *SSPPR) Push(batch NeighborBatch, locals, shards []int32) {
	if batch.NumRows() != len(locals) || len(locals) != len(shards) {
		panic("core: Push batch size mismatch")
	}
	if batch.NumRows() == 0 {
		return
	}
	if m.cfg.Affinity {
		if batch.NumRows() <= m.cfg.pushThreshold() || m.pool == nil {
			m.pushFlatSequential(batch, locals, shards)
			return
		}
		m.pushAffinity(batch, locals, shards)
		return
	}
	workers := m.cfg.pushWorkers()
	if batch.NumRows() <= m.cfg.pushThreshold() || workers <= 1 {
		m.pushSequential(batch, locals, shards)
		return
	}
	if m.cfg.LockedPush {
		m.pushLocked(batch, locals, shards, workers)
		return
	}
	m.pushOwned(batch, locals, shards, workers)
}

// claimRow atomically takes the full residual of a source vertex and
// credits its PPR value. Returns the propagating mass m (0 when the row is
// stale or a dangling node).
func (m *SSPPR) claimRow(key pmap.Key, rowWDeg float32) float64 {
	rv := m.r.Swap(key, 0)
	if rv <= 0 {
		return 0 // nothing to propagate this round
	}
	m.p.Add(key, m.cfg.Alpha*rv)
	if rowWDeg <= 0 {
		return 0 // dangling: the residual is absorbed
	}
	return (1 - m.cfg.Alpha) * rv
}

// visitResidual checks the activation condition after a residual update.
func (m *SSPPR) visitResidual(k pmap.Key, newVal, wdeg float64) {
	if newVal > m.cfg.Eps*wdeg {
		m.activated.Insert(k)
	}
}

// claimMasses runs the claim phase on the Striped maps: row i's residual is
// swapped out and credited to p, and masses[i] receives its propagating mass
// (0 when stale or dangling). Single-goroutine.
func (m *SSPPR) claimMasses(batch NeighborBatch, locals, shards []int32) []float64 {
	rows := batch.NumRows()
	if cap(m.masses) < rows {
		m.masses = make([]float64, rows)
	}
	masses := m.masses[:rows]
	alpha := m.cfg.Alpha
	for i := 0; i < rows; i++ {
		masses[i] = 0
		key := pmap.Key{Local: locals[i], Shard: shards[i]}
		rv := m.r.SwapSeq(key, 0)
		if rv <= 0 {
			continue
		}
		m.p.AddSeq(key, alpha*rv)
		if _, _, _, _, rowWDeg := batch.Row(i); rowWDeg <= 0 {
			continue
		}
		m.Pushes++
		masses[i] = (1 - alpha) * rv
	}
	return masses
}

func (m *SSPPR) pushSequential(batch NeighborBatch, locals, shards []int32) {
	// Single-threaded: use the lock-free map fast paths. No other goroutine
	// touches this query's state while the driver is in Push.
	eps := m.cfg.Eps
	if !m.cfg.DeterministicPop {
		// Single-pass: each row's claim is interleaved with its neighbor
		// applies, so residual a row receives from an earlier row of the SAME
		// batch propagates this round instead of waiting for the next. That
		// converges in measurably fewer pushes, but the row-visit interleaving
		// is not reproducible across engines — deterministic runs take the
		// claims-first path below so all engines agree bitwise (DESIGN.md §5j).
		alpha := m.cfg.Alpha
		for i := 0; i < batch.NumRows(); i++ {
			nl, ns, nw, nd, rowWDeg := batch.Row(i)
			key := pmap.Key{Local: locals[i], Shard: shards[i]}
			rv := m.r.SwapSeq(key, 0)
			if rv <= 0 {
				continue
			}
			m.p.AddSeq(key, alpha*rv)
			if rowWDeg <= 0 {
				continue
			}
			m.Pushes++
			inv := (1 - alpha) * rv / float64(rowWDeg)
			for j := range nl {
				k := pmap.Key{Local: nl[j], Shard: ns[j]}
				nv := m.r.AddSeq(k, float64(nw[j])*inv)
				if nv > eps*float64(nd[j]) {
					m.activated.InsertSeq(k)
				}
			}
		}
		return
	}
	masses := m.claimMasses(batch, locals, shards)
	for i := range masses {
		if masses[i] == 0 {
			continue
		}
		nl, ns, nw, nd, rowWDeg := batch.Row(i)
		inv := masses[i] / float64(rowWDeg)
		for j := range nl {
			k := pmap.Key{Local: nl[j], Shard: ns[j]}
			nv := m.r.AddSeq(k, float64(nw[j])*inv)
			if nv > eps*float64(nd[j]) {
				m.activated.InsertSeq(k)
			}
		}
	}
}

// pushFlatSequential is pushSequential over the affinity engine's flat
// tables: same claim-then-apply order, no pool round — small batches are not
// worth W channel handoffs.
func (m *SSPPR) pushFlatSequential(batch NeighborBatch, locals, shards []int32) {
	rows := batch.NumRows()
	eps := m.cfg.Eps
	alpha := m.cfg.Alpha
	if !m.cfg.DeterministicPop {
		// Same single-pass interleaving as pushSequential: same-batch residual
		// propagates this round. Deterministic runs need the claims-first
		// order below to stay bitwise-identical with the pool path.
		for i := 0; i < rows; i++ {
			nl, ns, nw, nd, rowWDeg := batch.Row(i)
			p := (pmap.Key{Local: locals[i], Shard: shards[i]}).Packed()
			rv := m.fr.SwapP(p, 0)
			if rv <= 0 {
				continue
			}
			m.fp.AddP(p, alpha*rv)
			if rowWDeg <= 0 {
				continue
			}
			m.Pushes++
			inv := (1 - alpha) * rv / float64(rowWDeg)
			for j := range nl {
				kp := (pmap.Key{Local: nl[j], Shard: ns[j]}).Packed()
				nv := m.fr.AddP(kp, float64(nw[j])*inv)
				if nv > eps*float64(nd[j]) {
					m.fact.InsertP(kp)
				}
			}
		}
		m.flushAffinityMetrics()
		return
	}
	if cap(m.masses) < rows {
		m.masses = make([]float64, rows)
	}
	masses := m.masses[:rows]
	for i := 0; i < rows; i++ {
		masses[i] = 0
		p := (pmap.Key{Local: locals[i], Shard: shards[i]}).Packed()
		rv := m.fr.SwapP(p, 0)
		if rv <= 0 {
			continue
		}
		m.fp.AddP(p, alpha*rv)
		if _, _, _, _, rowWDeg := batch.Row(i); rowWDeg <= 0 {
			continue
		}
		m.Pushes++
		masses[i] = (1 - alpha) * rv
	}
	for i := range masses {
		if masses[i] == 0 {
			continue
		}
		nl, ns, nw, nd, rowWDeg := batch.Row(i)
		inv := masses[i] / float64(rowWDeg)
		for j := range nl {
			kp := (pmap.Key{Local: nl[j], Shard: ns[j]}).Packed()
			nv := m.fr.AddP(kp, float64(nw[j])*inv)
			if nv > eps*float64(nd[j]) {
				m.fact.InsertP(kp)
			}
		}
	}
	m.flushAffinityMetrics()
}

// pushAffinity is the shard-affinity push (DESIGN.md §5j): two pool rounds
// over long-lived workers that each own a fixed set of stripes.
//
// Round 1 (claim + materialize): worker w walks the batch rows whose keys it
// owns, in increasing global row index, swapping out their residuals and
// bucketing every neighbor delta by the destination worker that owns the
// neighbor's stripe — the one bucket sort of the round. Round 2 (merge +
// apply): worker d merges its W incoming buckets by source-row index (each
// is already row-sorted, so a run-at-a-time W-way merge restores the global
// row order) and applies them to its own stripes. No locks anywhere, and the
// per-key application order equals the sequential engine's, which is what
// keeps affinity scores bitwise identical under DeterministicPop.
func (m *SSPPR) pushAffinity(batch NeighborBatch, locals, shards []int32) {
	w := m.affWorkers
	rows := batch.NumRows()
	for i := range m.rowsByOwner {
		m.rowsByOwner[i] = m.rowsByOwner[i][:0]
	}
	for i := range m.buckets {
		b := &m.buckets[i]
		b.upds = b.upds[:0]
		b.runs = b.runs[:0]
	}
	for i := 0; i < rows; i++ {
		p := (pmap.Key{Local: locals[i], Shard: shards[i]}).Packed()
		m.rowsByOwner[pmap.StripeOfPacked(p)%w] = append(m.rowsByOwner[pmap.StripeOfPacked(p)%w], int32(i))
	}
	alpha, eps := m.cfg.Alpha, m.cfg.Eps
	m.pool.Do(func(pw int) {
		var pushes int64
		bkt := m.buckets[pw*w : (pw+1)*w]
		for _, ri := range m.rowsByOwner[pw] {
			i := int(ri)
			p := (pmap.Key{Local: locals[i], Shard: shards[i]}).Packed()
			rv := m.fr.SwapP(p, 0)
			if rv <= 0 {
				continue
			}
			m.fp.AddP(p, alpha*rv)
			nl, ns, nw, nd, rowWDeg := batch.Row(i)
			if rowWDeg <= 0 {
				continue
			}
			pushes++
			inv := (1 - alpha) * rv / float64(rowWDeg)
			for j := range nl {
				kp := (pmap.Key{Local: nl[j], Shard: ns[j]}).Packed()
				b := &bkt[pmap.StripeOfPacked(kp)%w]
				if nr := len(b.runs); nr == 0 || b.runs[nr-1].row != ri {
					b.runs = append(b.runs, affRun{row: ri})
				}
				b.upds = append(b.upds, affUpd{key: kp, delta: float64(nw[j]) * inv, aux: float64(nd[j])})
				b.runs[len(b.runs)-1].n++
			}
		}
		m.workerPushes[pw] = pushes
	})
	var updates int64
	for pw := 0; pw < w; pw++ {
		m.Pushes += m.workerPushes[pw]
	}
	for i := range m.buckets {
		updates += int64(len(m.buckets[i].upds))
	}
	m.pool.Do(func(d int) {
		// Cursor per producer bucket: next run and that run's update offset.
		var runCur, updCur [pmap.NumSubmaps]int32
		for {
			best := -1
			bestRow := int32(0)
			for pw := 0; pw < w; pw++ {
				b := &m.buckets[pw*w+d]
				if int(runCur[pw]) >= len(b.runs) {
					continue
				}
				if row := b.runs[runCur[pw]].row; best < 0 || row < bestRow {
					best, bestRow = pw, row
				}
			}
			if best < 0 {
				return
			}
			b := &m.buckets[best*w+d]
			run := b.runs[runCur[best]]
			upds := b.upds[updCur[best] : updCur[best]+run.n]
			for _, u := range upds {
				nv := m.fr.AddP(u.key, u.delta)
				if nv > eps*u.aux {
					m.fact.InsertP(u.key)
				}
			}
			updCur[best] += run.n
			runCur[best]++
		}
	})
	metrics.PmapAffinityRounds.Inc(1)
	metrics.PmapOwnedUpdates.Inc(updates)
	m.flushAffinityMetrics()
}

// flushAffinityMetrics forwards the flat tables' grow counters to the global
// metric, once per push round instead of once per grow.
func (m *SSPPR) flushAffinityMetrics() {
	grows := m.fp.Grows() + m.fr.Grows() + m.fact.Grows()
	if d := grows - m.lastGrows; d > 0 {
		metrics.PmapGrows.Inc(d)
		m.lastGrows = grows
	}
}

// pushLocked is the straightforward multi-threaded push: rows in parallel,
// every residual update takes its submap lock. Kept as the locking-scheme
// ablation; it claims per-row inside the parallel loop, so it is not
// bitwise-comparable to the other paths (it never was deterministic).
func (m *SSPPR) pushLocked(batch NeighborBatch, locals, shards []int32, workers int) {
	rows := batch.NumRows()
	var wg sync.WaitGroup
	var pushes int64
	var mu sync.Mutex
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= rows {
			break
		}
		hi := min(lo+chunk, rows)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			local := int64(0)
			for i := lo; i < hi; i++ {
				nl, ns, nw, nd, rowWDeg := batch.Row(i)
				mass := m.claimRow(pmap.Key{Local: locals[i], Shard: shards[i]}, rowWDeg)
				if mass == 0 {
					continue
				}
				local++
				inv := mass / float64(rowWDeg)
				for j := range nl {
					k := pmap.Key{Local: nl[j], Shard: ns[j]}
					nv := m.r.Add(k, float64(nw[j])*inv)
					m.visitResidual(k, nv, float64(nd[j]))
				}
			}
			mu.Lock()
			pushes += local
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	m.Pushes += pushes
}

// pushOwned is the lock-eliminated push of §3.3: phase 1 claims row
// residuals and materializes all neighbor deltas; phase 2 applies them with
// ApplyOwned, which partitions updates by submap index across workers so no
// locks are taken while mutating the residual map. Claims happen before any
// apply and the concatenation below preserves global row order, so scores
// match the sequential path bitwise.
func (m *SSPPR) pushOwned(batch NeighborBatch, locals, shards []int32, workers int) {
	rows := batch.NumRows()
	perWorker := make([][]pmap.Update, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var pushes int64
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= rows {
			break
		}
		hi := min(lo+chunk, rows)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var ups []pmap.Update
			local := int64(0)
			for i := lo; i < hi; i++ {
				nl, ns, nw, nd, rowWDeg := batch.Row(i)
				mass := m.claimRow(pmap.Key{Local: locals[i], Shard: shards[i]}, rowWDeg)
				if mass == 0 {
					continue
				}
				local++
				inv := mass / float64(rowWDeg)
				for j := range nl {
					ups = append(ups, pmap.Update{
						Key:   pmap.Key{Local: nl[j], Shard: ns[j]},
						Delta: float64(nw[j]) * inv,
						Aux:   float64(nd[j]),
					})
				}
			}
			perWorker[w] = ups
			mu.Lock()
			pushes += local
			mu.Unlock()
		}(w, lo, hi)
	}
	wg.Wait()
	m.Pushes += pushes
	total := 0
	for _, u := range perWorker {
		total += len(u)
	}
	updates := make([]pmap.Update, 0, total)
	for _, u := range perWorker {
		updates = append(updates, u...)
	}
	metrics.PmapOwnedUpdates.Inc(int64(total))
	m.r.ApplyOwned(updates, workers, m.visitResidual)
}

// ScoreCount returns the number of nodes holding PPR mass.
func (m *SSPPR) ScoreCount() int {
	if m.cfg.Affinity {
		return m.fp.Len()
	}
	return m.p.Len()
}

// RangeScores iterates the PPR estimates. Call only after the driver loop
// finished (both engines require quiescence for iteration).
func (m *SSPPR) RangeScores(f func(pmap.Key, float64) bool) {
	if m.cfg.Affinity {
		m.fp.Range(f)
		return
	}
	m.p.Range(f)
}

// Scores returns the computed PPR estimates. Call after the driver loop has
// drained the activated set.
func (m *SSPPR) Scores() map[pmap.Key]float64 {
	out := make(map[pmap.Key]float64, m.ScoreCount())
	m.RangeScores(func(k pmap.Key, v float64) bool {
		out[k] = v
		return true
	})
	return out
}

// RangeResiduals iterates the residual map. Like RangeScores, call only
// after the driver loop finished.
func (m *SSPPR) RangeResiduals(f func(pmap.Key, float64) bool) {
	if m.cfg.Affinity {
		m.fr.Range(f)
		return
	}
	m.r.Range(f)
}

// ResidualMass returns the total remaining residual (diagnostics: the
// engine's approximation error mass).
func (m *SSPPR) ResidualMass() float64 {
	s := 0.0
	visit := func(_ pmap.Key, v float64) bool {
		s += v
		return true
	}
	if m.cfg.Affinity {
		m.fr.Range(visit)
	} else {
		m.r.Range(visit)
	}
	return s
}
