package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pprengine/internal/admit"
	"pprengine/internal/agg"
	"pprengine/internal/cache"
	"pprengine/internal/delta"
	"pprengine/internal/ha"
	"pprengine/internal/mem"
	"pprengine/internal/metrics"
	"pprengine/internal/obs"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
	"pprengine/internal/wire"
)

// respPool holds the pooled response buffers the storage handlers encode
// into; the rpc server releases each one after writing it to the wire.
var respPool mem.Pool

// StorageServer is the per-machine Graph Storage endpoint: it owns the
// machine's shard (in shared memory) and answers neighborhood requests over
// RPC. One StorageServer per simulated machine; all compute processes on
// other machines reach it through rpc.Clients.
type StorageServer struct {
	Shard   *shard.Shard
	Locator *shard.Locator // for global IDs in sample responses
	// Features is the optional per-shard feature store for the GNN case
	// study: row-major [NumCore x FeatureDim].
	Features   []float32
	FeatureDim int

	srv    *rpc.Server
	tracer *obs.Tracer

	// delta, when non-nil, is the machine's mutation tier (AttachDelta): the
	// delta-CSR store backing MethodApplyMutations and the epoch-pinned
	// neighbor fetch.
	delta *delta.Store

	// Owner-compute query-service observability, fed by the SSPPRQuery
	// handler: accumulated per-phase breakdown plus served/failed counts.
	// QueryLatency, when set before EnableQueryService, observes each
	// query's wall time in seconds (an admin-registry histogram).
	queryPhases   metrics.AtomicBreakdown
	queriesServed atomic.Int64
	queryFailures atomic.Int64
	QueryLatency  *obs.Histogram

	// sampleZeroCopyOff routes MethodSampleNeighbors through the legacy
	// copy paths (heap-built response, heap encode) instead of the pooled
	// arena + buffer hot path — the pre-pooling allocation profile, kept as
	// the -exp hotpath2 sampling baseline. Toggle only while no requests
	// are in flight (see SetSampleZeroCopy). Zero — the default — pools.
	sampleZeroCopyOff int
}

// SetSampleZeroCopy toggles the pooled zero-copy sampling handler. Toggle
// only between benchmark passes or before Start — the flag is read without
// synchronization by in-flight handlers.
func (ss *StorageServer) SetSampleZeroCopy(on bool) {
	if on {
		ss.sampleZeroCopyOff = 0
	} else {
		ss.sampleZeroCopyOff = 1
	}
}

// NewStorageServer wraps a shard (and locator) in a server. Call Start to
// begin serving.
func NewStorageServer(s *shard.Shard, loc *shard.Locator) *StorageServer {
	ss := &StorageServer{Shard: s, Locator: loc, srv: rpc.NewServer()}
	ss.register()
	return ss
}

func (ss *StorageServer) register() {
	// Echo is the health-probe method: ha.HealthTracker pings it to decide
	// whether this machine is alive. It must stay trivial — a probe measures
	// reachability and scheduling, not shard work.
	ss.srv.Handle(rpc.MethodEcho, func(p []byte) ([]byte, error) { return p, nil })
	// The batched-CSR handler is the server side of the zero-copy hot path:
	// the request IDs are read as a view over the (pooled) request payload,
	// the CSR batch is assembled in a pooled arena, and the response is
	// encoded straight into a pooled buffer that the rpc layer writes
	// vectored and then releases — steady state, a fetch costs the server no
	// per-request heap allocation.
	ss.srv.HandleBuf(rpc.MethodGetNeighborInfos, func(_ context.Context, p []byte) (*mem.Buf, error) {
		ids, err := wire.DecodeIDListView(p)
		if err != nil {
			return nil, err
		}
		arena := mem.GetArena()
		defer mem.PutArena(arena)
		infos, err := BuildInfosArena(ss.Shard, ids, arena)
		if err != nil {
			return nil, err
		}
		buf := respPool.Get(wire.CSRSize(infos))
		buf.SetLen(len(wire.EncodeCSRTo(buf.Bytes()[:0], infos)))
		return buf, nil
	})
	ss.srv.Handle(rpc.MethodGetNeighborInfosLoL, func(p []byte) ([]byte, error) {
		ids, err := wire.DecodeIDListView(p)
		if err != nil {
			return nil, err
		}
		arena := mem.GetArena()
		defer mem.PutArena(arena)
		infos, err := BuildInfosArena(ss.Shard, ids, arena)
		if err != nil {
			return nil, err
		}
		return wire.EncodeLoL(infos), nil
	})
	ss.srv.Handle(rpc.MethodGetNeighborInfoOne, func(p []byte) ([]byte, error) {
		ids, err := wire.DecodeIDList(p)
		if err != nil {
			return nil, err
		}
		if len(ids) != 1 {
			return nil, fmt.Errorf("core: GetNeighborInfoOne wants exactly 1 id, got %d", len(ids))
		}
		infos, err := BuildInfos(ss.Shard, ids)
		if err != nil {
			return nil, err
		}
		// The single-vertex path ships the uncompressed format, matching
		// the naive per-vertex implementation it models.
		return wire.EncodeLoL(infos), nil
	})
	ss.srv.Handle(rpc.MethodSampleOneNeighbor, func(p []byte) ([]byte, error) {
		req, err := wire.DecodeSampleRequest(p)
		if err != nil {
			return nil, err
		}
		resp, err := SampleOneNeighborLocal(ss.Shard, ss.Locator, req.Locals, req.Seed)
		if err != nil {
			return nil, err
		}
		return wire.EncodeSampleResponse(resp), nil
	})
	ss.srv.Handle(rpc.MethodGetShardStats, func(p []byte) ([]byte, error) {
		st := shard.ComputeStats(ss.Shard)
		return wire.EncodeShardStats(&wire.ShardStats{
			ShardID:      st.ShardID,
			NumShards:    ss.Shard.NumShards,
			NumCore:      int64(st.NumCore),
			NumEntries:   st.NumEntries,
			HaloNodes:    int64(st.HaloNodes),
			MemoryBytes:  st.MemoryBytes,
			RemoteFrac:   st.RemoteFrac,
			AvgOutDegree: st.AvgOutDegree,
		}), nil
	})
	// The sampling handler follows the batched-CSR one: view-decoded request
	// (locals alias the pooled request payload), rows sampled straight into a
	// pooled arena sized exactly by a pre-pass, response encoded into a pooled
	// buffer the rpc layer releases after its vectored write. The legacy
	// copy path stays reachable behind SetSampleZeroCopy(false) as the
	// -exp hotpath2 baseline.
	ss.srv.HandleBuf(rpc.MethodSampleNeighbors, func(_ context.Context, p []byte) (*mem.Buf, error) {
		if ss.sampleZeroCopyOff != 0 {
			req, err := wire.DecodeSampleNRequest(p)
			if err != nil {
				return nil, err
			}
			resp, err := SampleNeighborsLocal(ss.Shard, ss.Locator, req.Locals, req.Fanout, req.Seed)
			if err != nil {
				return nil, err
			}
			return mem.Wrap(wire.EncodeSampleNResponse(resp)), nil
		}
		req, err := wire.DecodeSampleNRequestView(p)
		if err != nil {
			return nil, err
		}
		arena := mem.GetArena()
		defer mem.PutArena(arena)
		var resp wire.SampleNResponse
		if err := SampleNeighborsInto(ss.Shard, ss.Locator, req.Locals, req.Fanout, req.Seed, arena, &resp); err != nil {
			return nil, err
		}
		buf := respPool.Get(wire.SampleNSize(&resp))
		buf.SetLen(len(wire.EncodeSampleNTo(buf.Bytes()[:0], &resp)))
		return buf, nil
	})
	// The feature handler mirrors the batched-CSR one: view-decoded request
	// IDs, rows gathered straight into a pooled buffer (header + one append
	// per row — no intermediate heap block), released by the rpc layer after
	// the vectored write.
	ss.srv.HandleBuf(rpc.MethodFetchFeatures, func(_ context.Context, p []byte) (*mem.Buf, error) {
		ids, err := wire.DecodeIDListView(p)
		if err != nil {
			return nil, err
		}
		if ss.Features == nil {
			return nil, fmt.Errorf("core: shard %d: %s", ss.Shard.ShardID, noFeatureStoreMsg)
		}
		d := ss.FeatureDim
		buf := respPool.Get(wire.FeatureResponseSize(len(ids) * d))
		out := wire.AppendFeatureHeader(buf.Bytes()[:0], d, len(ids)*d)
		for _, id := range ids {
			if err := ss.Shard.CheckLocal(id); err != nil {
				buf.Release()
				return nil, err
			}
			out = wire.AppendF32s(out, ss.Features[int(id)*d:(int(id)+1)*d])
		}
		buf.SetLen(len(out))
		return buf, nil
	})
}

// ErrNoFeatureStore reports a feature fetch against a shard that has no
// feature block attached (AttachFeatures / AttachLocalFeatures). Local
// fetches wrap it directly; remote fetches re-wrap the server's error
// string so errors.Is works across the wire too.
var ErrNoFeatureStore = errors.New("core: no feature store attached")

// noFeatureStoreMsg is the marker the server embeds in its error so the
// client side can map the stringified remote error back to the sentinel.
const noFeatureStoreMsg = "no feature store attached"

// wrapFeatureErr maps a remote handler's no-feature-store message back to
// the typed sentinel: rpc errors cross the wire as strings, so this is the
// only way callers keep errors.Is(err, ErrNoFeatureStore) for remote shards.
func wrapFeatureErr(err error) error {
	if err != nil && !errors.Is(err, ErrNoFeatureStore) && strings.Contains(err.Error(), noFeatureStoreMsg) {
		return fmt.Errorf("%w: %v", ErrNoFeatureStore, err)
	}
	return err
}

// epochWaitTimeout bounds how long an epoch-pinned fetch waits for an
// in-flight mirror batch when the request carries no deadline of its own.
const epochWaitTimeout = 5 * time.Second

// AttachDelta installs the machine's delta store and registers the two
// mutation-tier wire methods:
//
//   - MethodApplyMutations installs one resolved, epoch-stamped mutation
//     batch (coordinator broadcast / replica mirror). The payload aliases a
//     pooled request frame, so the decode copies before the store keeps
//     anything. Replays ack idempotently; an epoch gap is an error and the
//     store stays stale (DESIGN.md §5l).
//   - MethodGetNeighborInfosAt is the epoch-pinned GetNeighborInfos: same
//     zero-copy CSR response path, but rows resolve through the delta
//     overlay as of the request's epoch instead of the raw base CSR.
//
// Call before Start, once per server; the store is machine-shared state like
// the shard itself.
func (ss *StorageServer) AttachDelta(store *delta.Store) {
	ss.delta = store
	ss.srv.Handle(rpc.MethodApplyMutations, func(p []byte) ([]byte, error) {
		b, err := wire.DecodeMutationBatch(p)
		if err != nil {
			return nil, err
		}
		if err := store.Apply(b); err != nil {
			return nil, err
		}
		return wire.EncodeMutationAck(b.Epoch), nil
	})
	ss.srv.HandleBuf(rpc.MethodGetNeighborInfosAt, func(ctx context.Context, p []byte) (*mem.Buf, error) {
		epoch, ids, err := wire.DecodeIDListAtView(p)
		if err != nil {
			return nil, err
		}
		// A pinned epoch names an assigned batch, but the coordinator's
		// mirror delivering it here may still be in flight (its local store
		// advances first). Wait for it, bounded so a stale machine errors
		// instead of hanging the query.
		if epoch != 0 {
			wctx := ctx
			if _, ok := wctx.Deadline(); !ok {
				var cancel context.CancelFunc
				wctx, cancel = context.WithTimeout(ctx, epochWaitTimeout)
				defer cancel()
			}
			if err := store.WaitEpoch(wctx, epoch); err != nil {
				return nil, err
			}
		}
		arena := mem.GetArena()
		defer mem.PutArena(arena)
		infos, err := BuildInfosAtArena(store, ss.Shard.ShardID, ids, epoch, arena)
		if err != nil {
			return nil, err
		}
		buf := respPool.Get(wire.CSRSize(infos))
		buf.SetLen(len(wire.EncodeCSRTo(buf.Bytes()[:0], infos)))
		return buf, nil
	})
}

// Delta returns the attached delta store (nil for a static deployment).
func (ss *StorageServer) Delta() *delta.Store { return ss.delta }

// FetchFeaturesLocal gathers feature rows for core vertices.
func (ss *StorageServer) FetchFeaturesLocal(ids []int32) ([]float32, error) {
	if ss.Features == nil {
		return nil, fmt.Errorf("core: shard %d: %w", ss.Shard.ShardID, ErrNoFeatureStore)
	}
	d := ss.FeatureDim
	out := make([]float32, 0, len(ids)*d)
	for _, id := range ids {
		if err := ss.Shard.CheckLocal(id); err != nil {
			return nil, err
		}
		out = append(out, ss.Features[int(id)*d:(int(id)+1)*d]...)
	}
	return out, nil
}

// Start listens on a fresh loopback port and returns the dialable address.
func (ss *StorageServer) Start() (string, error) {
	return ss.srv.ListenAndServe()
}

// ServeListener serves on a caller-provided listener (blocking). Used by
// real deployments that bind a specific address.
func (ss *StorageServer) ServeListener(lis net.Listener) {
	ss.srv.Serve(lis)
}

// Handle exposes the underlying server's registry so the cluster harness can
// add machine-level handlers (e.g. gradient allreduce).
func (ss *StorageServer) Handle(m rpc.Method, h rpc.Handler) { ss.srv.Handle(m, h) }

// AttachTracer installs the machine's tracer: the rpc server then records one
// span per traced request it handles, and the owner-compute query service
// parents its spans to the caller's trace.
func (ss *StorageServer) AttachTracer(t *obs.Tracer) {
	ss.tracer = t
	ss.srv.SetTracer(t)
}

// Tracer returns the attached tracer (nil when tracing is off).
func (ss *StorageServer) Tracer() *obs.Tracer { return ss.tracer }

// QueryPhases returns the accumulated per-phase breakdown of every query
// served by this server's owner-compute handler.
func (ss *StorageServer) QueryPhases() *metrics.AtomicBreakdown { return &ss.queryPhases }

// QueryCounts returns how many owner-compute queries this server served and
// how many of those failed.
func (ss *StorageServer) QueryCounts() (served, failed int64) {
	return ss.queriesServed.Load(), ss.queryFailures.Load()
}

// RPCStats returns the underlying server's request counters.
func (ss *StorageServer) RPCStats() rpc.Stats { return ss.srv.Stats() }

// Close shuts the server down.
func (ss *StorageServer) Close() { ss.srv.Close() }

// Shutdown drains the server gracefully: in-flight requests finish (bounded
// by ctx), new ones are rejected. See rpc.Server.Shutdown.
func (ss *StorageServer) Shutdown(ctx context.Context) error { return ss.srv.Shutdown(ctx) }

// SampleOneNeighborLocal samples one weighted out-neighbor for each listed
// core vertex of s. Vertices without out-edges return local -1. The seed
// makes the whole batch reproducible.
func SampleOneNeighborLocal(s *shard.Shard, loc *shard.Locator, locals []int32, seed int64) (*wire.SampleResponse, error) {
	rng := rand.New(rand.NewSource(seed))
	resp := &wire.SampleResponse{
		Locals:  make([]int32, len(locals)),
		Shards:  make([]int32, len(locals)),
		Globals: make([]int32, len(locals)),
	}
	for i, l := range locals {
		if err := s.CheckLocal(l); err != nil {
			return nil, err
		}
		vp := s.VertexProp(l)
		if vp.Degree() == 0 || vp.WDeg <= 0 {
			resp.Locals[i] = -1
			resp.Shards[i] = -1
			resp.Globals[i] = -1
			continue
		}
		target := rng.Float64() * float64(vp.WDeg)
		acc := 0.0
		j := vp.Degree() - 1
		for k, w := range vp.Weights {
			acc += float64(w)
			if acc >= target {
				j = k
				break
			}
		}
		resp.Locals[i] = vp.Locals[j]
		resp.Shards[i] = vp.Shards[j]
		resp.Globals[i] = int32(loc.Global(vp.Shards[j], vp.Locals[j]))
	}
	return resp, nil
}

// respFuture is the minimal pending-response surface shared by a direct
// *rpc.Future and a failover-routed *ha.CallFuture, so the fetch paths work
// identically with and without replication. Release hands the response's
// pooled payload buffer back to its pool once the consumer is done with the
// bytes (idempotent, no-op before resolution — DESIGN.md §5h).
type respFuture interface {
	Done() <-chan struct{}
	Wait() ([]byte, error)
	WaitCtx(ctx context.Context) ([]byte, error)
	Release()
}

// InfoFuture is the engine-level future for a neighbor-info fetch. Local
// fetches resolve immediately (Batch already set); remote fetches decode on
// Wait.
type InfoFuture struct {
	batch    NeighborBatch
	err      error
	futures  []respFuture // the batched request (Batch/BatchCompress)
	mode     FetchMode
	dstShard int32 // destination shard, for peer-fault attribution

	// FetchSingle state: the paper's "Single" baseline processes one
	// vertex at a time, so the per-vertex requests are issued strictly
	// sequentially at Wait time — no pipelining. retry bounds transient
	// per-vertex retries; retried counts the backoff rounds taken.
	seqClient *rpc.Client
	seqRouter *ha.ReplicaRouter // when set, per-vertex calls fail over
	seqLocals []int32
	retry     rpc.RetryPolicy
	retried   int64

	// cached is set when the fetch went through the dynamic neighbor-row
	// cache; see getNeighborInfosCached.
	cached *cachedFetch
	// aggTicket is set when the fetch (or, with the cache, its leader rows)
	// went through the cross-query fetch aggregator. For an uncached
	// aggregated fetch it is also the wait source; for a cached one it only
	// carries the wire accounting (the flights resolve the rows).
	aggTicket *agg.Ticket
	// remoteRows counts the rows this future actually requests over RPC
	// (with the cache: flight-leader rows only). Known at issue time.
	remoteRows int64
	// cacheHits / cacheCoalesced count rows served from the shared cache
	// and rows piggybacked on another query's in-flight fetch.
	cacheHits      int64
	cacheCoalesced int64
	// rpcReqs / reqBytes record the wire requests (and request payload
	// bytes) this fetch issued, for the non-aggregated paths where both are
	// known at issue time. Aggregated fetches read them off the ticket
	// instead — see RPCRequests.
	rpcReqs  int64
	reqBytes int64

	// tr/sc time the cache-wait phase of a cached fetch ("cache:wait" span)
	// when the issuing query is traced. Both are nil-safe/zero-safe.
	tr *obs.Tracer
	sc obs.SpanContext

	// zeroCopy selects the view decoders (Config.ZeroCopy) for the batched
	// remote paths; release returns the pooled buffer / arena backing the
	// decoded batch, set by the wait path that decoded it.
	zeroCopy    bool
	release     func()
	releaseOnce sync.Once
}

// Release hands back the pooled response buffer (or decode arena) backing
// this future's batch. Call it only after every read of the batch returned
// by Wait/WaitCtx — afterwards the batch's rows may alias recycled memory.
// Idempotent and nil-safe; futures whose batch owns its memory (local
// shared-memory views, cache rows, copy-decoded responses) make it a no-op.
func (f *InfoFuture) Release() {
	if f == nil || f.release == nil {
		return
	}
	f.releaseOnce.Do(f.release)
}

// Retries returns the number of transient-error retries this fetch
// performed (FetchSingle mode only; the batched modes never retry).
func (f *InfoFuture) Retries() int64 { return f.retried }

// RemoteRows returns the number of rows this future requests over RPC —
// with the dynamic cache active, cache hits and coalesced rows are excluded.
func (f *InfoFuture) RemoteRows() int64 { return f.remoteRows }

// CacheHits returns the rows served from the dynamic neighbor-row cache.
func (f *InfoFuture) CacheHits() int64 { return f.cacheHits }

// CacheCoalesced returns the rows that joined another query's in-flight
// fetch instead of issuing their own RPC.
func (f *InfoFuture) CacheCoalesced() int64 { return f.cacheCoalesced }

// RPCRequests returns the wire requests attributed to this fetch. For an
// aggregated fetch the flush is shared: its one request (and payload bytes)
// is charged to the fetch that opened the flush and zero to the riders, so
// per-query sums still equal the true wire totals. Call after the fetch
// resolved — an aggregated fetch reports zeros until its flush completes.
func (f *InfoFuture) RPCRequests() int64 {
	if f.aggTicket != nil {
		r, _ := f.aggTicket.Accounting()
		return r
	}
	return f.rpcReqs
}

// RequestBytes returns the request payload bytes attributed to this fetch
// (same attribution rule as RPCRequests).
func (f *InfoFuture) RequestBytes() int64 {
	if f.aggTicket != nil {
		_, b := f.aggTicket.Accounting()
		return b
	}
	return f.reqBytes
}

// Wait blocks for the response(s) and returns the decoded batch.
func (f *InfoFuture) Wait() (NeighborBatch, error) {
	return f.WaitCtx(context.Background())
}

// WaitCtx is Wait bounded by a context: it returns ctx.Err() as soon as ctx
// ends, even with the response still in flight.
func (f *InfoFuture) WaitCtx(ctx context.Context) (NeighborBatch, error) {
	if f.batch != nil || f.err != nil {
		return f.batch, f.err
	}
	if f.cached != nil {
		return f.waitCached(ctx)
	}
	if f.aggTicket != nil {
		infos, off, err := f.aggTicket.Wait(ctx)
		if err != nil {
			f.err = wrapPeerErr(f.dstShard, err)
			return nil, f.err
		}
		f.batch = &aggBatch{n: infos, off: off, rows: f.aggTicket.Rows()}
		// This ticket's share of the flush's pooled payload is returned at
		// f.Release, once the push consumed the rows.
		f.release = f.aggTicket.Release
		return f.batch, nil
	}
	switch f.mode {
	case FetchBatchCompress:
		fut := f.futures[0]
		payload, err := fut.WaitCtx(ctx)
		if err != nil {
			f.err = wrapPeerErr(f.dstShard, err)
			return nil, f.err
		}
		var infos *wire.NeighborInfos
		if f.zeroCopy {
			// The decoded batch aliases the pooled response payload when the
			// host allows it; the buffer goes home at f.Release (after the
			// push consumed the rows). A misaligned payload falls back to a
			// heap copy, so the buffer can go home immediately.
			aliased := wire.CanAlias(payload)
			infos, err = wire.DecodeCSRView(payload, nil)
			if aliased && err == nil {
				f.release = fut.Release
			} else {
				fut.Release()
			}
		} else {
			infos, err = wire.DecodeCSR(payload)
			fut.Release()
		}
		if err != nil {
			f.err = wrapPeerErr(f.dstShard, err)
			return nil, f.err
		}
		f.batch = InfosBatch(infos)
	case FetchBatch:
		fut := f.futures[0]
		payload, err := fut.WaitCtx(ctx)
		if err != nil {
			f.err = wrapPeerErr(f.dstShard, err)
			return nil, f.err
		}
		var infos *wire.NeighborInfos
		if f.zeroCopy {
			// The interleaved LoL layout cannot be aliased; the decode lands
			// in a pooled arena instead, recycled at f.Release. The wire
			// payload itself is done as soon as the decode finishes.
			arena := mem.GetArena()
			infos, err = wire.DecodeLoLView(payload, arena)
			fut.Release()
			if err != nil {
				mem.PutArena(arena)
			} else {
				f.release = func() { mem.PutArena(arena) }
			}
		} else {
			infos, err = wire.DecodeLoL(payload)
			fut.Release()
		}
		if err != nil {
			f.err = wrapPeerErr(f.dstShard, err)
			return nil, f.err
		}
		f.batch = InfosBatch(infos)
	case FetchSingle:
		// One request-response round trip per vertex, strictly in order.
		merged := &wire.NeighborInfos{Indptr: []int32{0}}
		var arena *mem.Arena
		if f.zeroCopy {
			// Each response is decoded into a pooled arena reset per vertex:
			// the merge below copies what it keeps, so nothing outlives the
			// reset and the per-vertex decode stops allocating.
			arena = mem.GetArena()
			defer mem.PutArena(arena)
		}
		for _, l := range f.seqLocals {
			payload, err := f.callOne(ctx, l)
			if err != nil {
				f.err = wrapPeerErr(f.dstShard, err)
				return nil, f.err
			}
			var one *wire.NeighborInfos
			if arena != nil {
				arena.Reset()
				one, err = wire.DecodeLoLView(payload, arena)
			} else {
				one, err = wire.DecodeLoL(payload)
			}
			if err != nil {
				f.err = err
				return nil, err
			}
			for i := 0; i < one.NumRows(); i++ {
				l, s, w, d := one.Row(i)
				merged.Locals = append(merged.Locals, l...)
				merged.Shards = append(merged.Shards, s...)
				merged.Weights = append(merged.Weights, w...)
				merged.WDegs = append(merged.WDegs, d...)
				merged.Indptr = append(merged.Indptr, int32(len(merged.Locals)))
				merged.RowWDeg = append(merged.RowWDeg, one.RowWDeg[i])
			}
		}
		f.batch = InfosBatch(merged)
	}
	return f.batch, f.err
}

// callOne fetches a single vertex's row, retrying transient failures when
// the config opted in. With a replica router the retry policy is not used:
// failover to a replica subsumes same-destination retries.
func (f *InfoFuture) callOne(ctx context.Context, l int32) ([]byte, error) {
	payload := wire.EncodeIDList([]int32{l})
	if f.seqRouter != nil {
		return f.seqRouter.Do(ctx, f.dstShard, rpc.MethodGetNeighborInfoOne, payload)
	}
	if f.retry.MaxAttempts == 0 {
		return f.seqClient.SyncCallCtx(ctx, rpc.MethodGetNeighborInfoOne, payload)
	}
	p := f.retry
	p.OnRetry = func(int, error) { f.retried++ }
	return f.seqClient.CallRetry(ctx, rpc.MethodGetNeighborInfoOne, payload, p)
}

// wrapPeerErr attributes a remote-fetch failure to the destination shard
// (the primary's machine index equals the shard index in this engine).
// Waiter-side cancellations are not peer faults and pass through unwrapped;
// router errors already carry the actual machine tried and are preserved.
func wrapPeerErr(dstShard int32, err error) error {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return ha.WrapPeer(int(dstShard), dstShard, "", err)
}

// SampleFuture is the future for a sample_one_neighbor call.
type SampleFuture struct {
	resp *wire.SampleResponse
	err  error
	fut  respFuture
}

// Wait blocks for the sampled neighbors.
func (f *SampleFuture) Wait() (*wire.SampleResponse, error) {
	return f.WaitCtx(context.Background())
}

// WaitCtx is Wait bounded by a context.
func (f *SampleFuture) WaitCtx(ctx context.Context) (*wire.SampleResponse, error) {
	if f.resp != nil || f.err != nil {
		return f.resp, f.err
	}
	payload, err := f.fut.WaitCtx(ctx)
	if err != nil {
		f.err = err
		return nil, err
	}
	f.resp, f.err = wire.DecodeSampleResponse(payload)
	f.fut.Release() // response copied into f.resp by the decode
	return f.resp, f.err
}

// DistGraphStorage is a compute process's handle on the whole distributed
// graph: direct shared-memory access to the local shard, RPC clients to the
// others. It is the Go analogue of the Python object constructed from the
// rrefs list in Figure 4.
type DistGraphStorage struct {
	ShardID   int32
	NumShards int32
	Local     *shard.Shard
	Locator   *shard.Locator
	Clients   []*rpc.Client // indexed by shard ID; Clients[ShardID] == nil

	// LocalFeatures/FeatureDim give shared-memory access to the machine's
	// feature block for the GNN case study (see AttachLocalFeatures).
	LocalFeatures []float32
	FeatureDim    int

	// Cache, when non-nil, is the machine-wide dynamic cache of remote
	// neighbor rows with single-flight fetch deduplication (see
	// internal/cache and Config.CacheBytes). nil disables it, preserving
	// the paper's ablation behavior exactly.
	Cache *cache.Cache

	// Aggs, when non-nil, holds the per-destination-shard cross-query fetch
	// aggregators (indexed by shard ID; the local entry is nil). Like the
	// cache, aggregators are machine-shared state: every compute process of
	// a machine enqueues into the same pending batches, so concurrent
	// queries' fetches to one shard merge into one wire request. nil
	// disables aggregation (the default).
	Aggs []*agg.Aggregator

	// FeatCache, when non-nil, is the machine-wide cache of remote feature
	// rows with single-flight deduplication and PPR-mass admission (see
	// cache.FeatureCache and Config.FeatCacheBytes). nil disables it.
	FeatCache *cache.FeatureCache

	// FeatAggs, when non-nil, holds the per-destination-shard feature-fetch
	// aggregators (indexed by shard ID; the local entry is nil) — the
	// feature tier's analogue of Aggs, sharing the same window/row knobs.
	FeatAggs []*agg.FeatureAggregator

	// Router, when non-nil, carries every remote request through the
	// replication layer: primary first, failover to a healthy replica on
	// error/timeout/open breaker (see internal/ha). Like the cache and the
	// aggregators it is machine-shared state. nil keeps the direct
	// single-client paths, preserving the paper's behavior exactly.
	Router *ha.ReplicaRouter

	// Delta, when non-nil, is the machine-shared delta-CSR mutation store
	// (internal/delta): queries pin one of its epochs and every fetch —
	// local shared-memory reads included — resolves through the overlay as
	// of that epoch. nil keeps the static base-CSR engine byte-for-byte.
	Delta *delta.Store

	// Admit, when non-nil, is the machine's admission controller
	// (internal/admit): RunSSPPR claims an execution slot before any
	// pop/push work and sheds queries that cannot meet their deadline or
	// exceed their tenant's quota. Machine-shared state like the cache.
	Admit *admit.Controller

	// Hedger, when non-nil (requires Router), carries remote requests
	// through hedged dispatch: a fetch whose primary has not answered within
	// the hedge delay is also issued to a healthy replica, first response
	// wins. nil keeps the plain routed (or direct) path.
	Hedger *admit.Hedger

	// Tracer records this machine's spans for sampled queries (nil when
	// tracing is off — every use is nil-safe).
	Tracer *obs.Tracer

	// featZeroCopyOff disables view decoding of feature responses (the
	// feature path has no per-query Config, so the zero-copy knob is
	// structural; see SetFeatureZeroCopy). Zero — the default — aliases.
	featZeroCopyOff int

	// sampleZeroCopyOff disables view decoding of sampling responses and
	// the arena-built local sampling path (the k-hop path has no per-query
	// Config either; see SetSampleZeroCopy). Zero — the default — aliases.
	sampleZeroCopyOff int
}

// zeroCopySamples reports whether sampling responses should be view-decoded.
func (g *DistGraphStorage) zeroCopySamples() bool { return g.sampleZeroCopyOff == 0 }

// SetSampleZeroCopy toggles view decoding for sampling responses and the
// arena-built local sampling fast path. Like SetFeatureZeroCopy, flip it only
// while the handle is quiescent.
func (g *DistGraphStorage) SetSampleZeroCopy(on bool) {
	if on {
		g.sampleZeroCopyOff = 0
	} else {
		g.sampleZeroCopyOff = 1
	}
}

// AttachCache installs the shared dynamic neighbor-row cache. Call once at
// setup; like the shard, the cache is meant to be shared by every compute
// handle of the machine.
func (g *DistGraphStorage) AttachCache(c *cache.Cache) { g.Cache = c }

// AttachAggregators installs a prebuilt per-shard aggregator slice (one
// entry per shard, nil for the local shard). Cluster construction shares one
// slice across all of a machine's compute handles so aggregation works
// across processes, not just within one.
func (g *DistGraphStorage) AttachAggregators(aggs []*agg.Aggregator) { g.Aggs = aggs }

// AttachFetchAggregators builds one aggregator per remote client of this
// handle and attaches them — the single-compute-process convenience
// (cmd/pprquery, deploy.EnableQueries). agg.New returns nil for the nil
// local client, which disables aggregation for the shared-memory shard.
func (g *DistGraphStorage) AttachFetchAggregators(o agg.Options) {
	if o.Tracer == nil {
		// Flush spans belong to the same machine-local recorder as the rest
		// of this handle's spans unless the caller wired one explicitly.
		o.Tracer = g.Tracer
	}
	if g.Hedger != nil {
		// Hedging applies to merged flushes too: a slow primary re-issues
		// the whole flush to a replica. Attach the hedger first.
		g.Aggs = HedgedAggregators(g.Hedger, g.NumShards, g.ShardID, o)
		return
	}
	if g.Router != nil {
		// With replication on, flushes must go through the router so a merged
		// request fails over as a unit; attach the router first.
		g.Aggs = RoutedAggregators(g.Router, g.NumShards, g.ShardID, o)
		return
	}
	aggs := make([]*agg.Aggregator, len(g.Clients))
	for i, c := range g.Clients {
		aggs[i] = agg.New(c, o)
	}
	g.Aggs = aggs
}

// AttachFeatureCache installs the shared feature-row cache. Like the
// neighbor-row cache it is machine-level shared state: attach the same
// instance to every compute handle of a machine.
func (g *DistGraphStorage) AttachFeatureCache(c *cache.FeatureCache) { g.FeatCache = c }

// AttachFeatureAggregators installs a prebuilt per-shard feature-fetch
// aggregator slice (one entry per shard, nil for the local shard), shared
// across a machine's compute handles like Aggs.
func (g *DistGraphStorage) AttachFeatureAggregators(aggs []*agg.FeatureAggregator) { g.FeatAggs = aggs }

// AttachFeatureFetchAggregators builds one feature aggregator per remote
// client (or per routed shard, with replication on) and attaches them — the
// single-compute-process convenience mirroring AttachFetchAggregators.
func (g *DistGraphStorage) AttachFeatureFetchAggregators(o agg.Options) {
	if o.Tracer == nil {
		o.Tracer = g.Tracer
	}
	if g.Hedger != nil {
		g.FeatAggs = HedgedFeatureAggregators(g.Hedger, g.NumShards, g.ShardID, o)
		return
	}
	if g.Router != nil {
		g.FeatAggs = RoutedFeatureAggregators(g.Router, g.NumShards, g.ShardID, o)
		return
	}
	aggs := make([]*agg.FeatureAggregator, len(g.Clients))
	for i, c := range g.Clients {
		aggs[i] = agg.NewFeature(c, o)
	}
	g.FeatAggs = aggs
}

// AttachDelta installs the machine-shared delta store on this compute
// handle; epoch-pinned queries (Config.PinnedEpoch, or the driver's
// admission-time pin) then resolve local rows and halo patches through it.
func (g *DistGraphStorage) AttachDelta(s *delta.Store) { g.Delta = s }

// AttachRouter installs the machine-shared replica router. Remote fetches,
// samples, and stats calls then prefer the shard's primary and fail over to
// replicas; the plain Clients slice stays in place for components that need
// a direct connection.
func (g *DistGraphStorage) AttachRouter(r *ha.ReplicaRouter) { g.Router = r }

// AttachAdmission installs the machine-shared admission controller; the
// driver then gates every RunSSPPR through it.
func (g *DistGraphStorage) AttachAdmission(c *admit.Controller) { g.Admit = c }

// AttachHedger installs the machine-shared request hedger. It also installs
// the hedger's router when none is attached yet, so hedged and non-hedged
// calls agree on the replica set.
func (g *DistGraphStorage) AttachHedger(h *admit.Hedger) {
	g.Hedger = h
	if g.Router == nil && h != nil {
		g.Router = h.Router()
	}
}

// AttachTracer installs the machine's tracer on this compute handle.
func (g *DistGraphStorage) AttachTracer(t *obs.Tracer) { g.Tracer = t }

// call issues one remote request: hedged over the replica set when a hedger
// is attached, through the router when replication is on, direct otherwise.
// The direct path binds the request to ctx; the routed and hedged paths are
// deliberately ctx-free (a failover attempt loop is shared state — the
// waiter's ctx still applies via WaitCtx) but still carry ctx's trace
// context so the attempt spans and the remote server join the query's trace.
func (g *DistGraphStorage) call(ctx context.Context, dstShard int32, m rpc.Method, payload []byte) respFuture {
	if g.Hedger != nil {
		return g.Hedger.CallTraced(obs.FromContext(ctx), dstShard, m, payload)
	}
	if g.Router != nil {
		return g.Router.CallTraced(obs.FromContext(ctx), dstShard, m, payload)
	}
	return g.Clients[dstShard].CallCtx(ctx, m, payload)
}

// routedTransport flushes one aggregator's batches through the replica
// router, bound to the aggregator's destination shard.
type routedTransport struct {
	r     *ha.ReplicaRouter
	shard int32
}

func (t routedTransport) Call(sc obs.SpanContext, m rpc.Method, payload []byte) agg.Response {
	return t.r.CallTraced(sc, t.shard, m, payload)
}

// RoutedAggregators builds one fetch aggregator per shard whose flushes go
// through the replica router (nil entry for localShard). Cluster and deploy
// use it when both aggregation and replication are enabled, so a merged
// flush fails over as a unit.
func RoutedAggregators(r *ha.ReplicaRouter, numShards, localShard int32, o agg.Options) []*agg.Aggregator {
	aggs := make([]*agg.Aggregator, numShards)
	for s := int32(0); s < numShards; s++ {
		if s == localShard {
			continue
		}
		aggs[s] = agg.NewTransport(routedTransport{r: r, shard: s}, o)
	}
	return aggs
}

// RoutedFeatureAggregators builds one feature-fetch aggregator per shard
// whose flushes go through the replica router (nil entry for localShard).
func RoutedFeatureAggregators(r *ha.ReplicaRouter, numShards, localShard int32, o agg.Options) []*agg.FeatureAggregator {
	aggs := make([]*agg.FeatureAggregator, numShards)
	for s := int32(0); s < numShards; s++ {
		if s == localShard {
			continue
		}
		aggs[s] = agg.NewFeatureTransport(routedTransport{r: r, shard: s}, o)
	}
	return aggs
}

// hedgedTransport flushes one aggregator's batches through the hedger: a
// merged flush whose primary is slow is re-issued to a replica as one unit,
// exactly like a single fetch. Hedging sits below the aggregator's
// single-flight merging, so the dedup semantics are untouched — one flush,
// at most two wire attempts, one decoded response.
type hedgedTransport struct {
	h     *admit.Hedger
	shard int32
}

func (t hedgedTransport) Call(sc obs.SpanContext, m rpc.Method, payload []byte) agg.Response {
	return t.h.CallTraced(sc, t.shard, m, payload)
}

// HedgedAggregators builds one fetch aggregator per shard whose flushes go
// through the hedger (nil entry for localShard).
func HedgedAggregators(h *admit.Hedger, numShards, localShard int32, o agg.Options) []*agg.Aggregator {
	aggs := make([]*agg.Aggregator, numShards)
	for s := int32(0); s < numShards; s++ {
		if s == localShard {
			continue
		}
		aggs[s] = agg.NewTransport(hedgedTransport{h: h, shard: s}, o)
	}
	return aggs
}

// HedgedFeatureAggregators builds one feature-fetch aggregator per shard
// whose flushes go through the hedger (nil entry for localShard).
func HedgedFeatureAggregators(h *admit.Hedger, numShards, localShard int32, o agg.Options) []*agg.FeatureAggregator {
	aggs := make([]*agg.FeatureAggregator, numShards)
	for s := int32(0); s < numShards; s++ {
		if s == localShard {
			continue
		}
		aggs[s] = agg.NewFeatureTransport(hedgedTransport{h: h, shard: s}, o)
	}
	return aggs
}

// aggFor returns the aggregator for dstShard, or nil when disabled.
func (g *DistGraphStorage) aggFor(dstShard int32) *agg.Aggregator {
	if g.Aggs == nil {
		return nil
	}
	return g.Aggs[dstShard]
}

// featAggFor returns the feature aggregator for dstShard, or nil.
func (g *DistGraphStorage) featAggFor(dstShard int32) *agg.FeatureAggregator {
	if g.FeatAggs == nil {
		return nil
	}
	return g.FeatAggs[dstShard]
}

// NewDistGraphStorage assembles a handle. clients must have one entry per
// shard; the local entry may be nil.
func NewDistGraphStorage(shardID int32, local *shard.Shard, loc *shard.Locator, clients []*rpc.Client) *DistGraphStorage {
	return &DistGraphStorage{
		ShardID:   shardID,
		NumShards: int32(len(clients)),
		Local:     local,
		Locator:   loc,
		Clients:   clients,
	}
}

// GetNeighborInfos fetches neighbor information for core vertices of
// dstShard. Local requests resolve immediately via shared memory; remote
// requests return a pending future issued under ctx — when ctx ends, the
// future resolves to ctx.Err(). mode selects the RPC strategy; cfg's retry
// policy applies to the sequential mode only.
func (g *DistGraphStorage) GetNeighborInfos(ctx context.Context, dstShard int32, locals []int32, cfg Config) *InfoFuture {
	epoch := cfg.PinnedEpoch
	if dstShard == g.ShardID {
		if epoch != 0 {
			// Epoch-pinned local read: rows resolve through the delta overlay
			// (materialized mutated rows, patched degree columns) instead of
			// the raw base CSR. Unmutated rows still alias shared memory.
			if g.Delta == nil {
				return &InfoFuture{err: fmt.Errorf("core: epoch %d pinned but no delta store attached (shard %d)", epoch, dstShard)}
			}
			vps, err := g.Delta.VertexProps(dstShard, locals, epoch)
			if err != nil {
				return &InfoFuture{err: err}
			}
			return &InfoFuture{batch: VPBatch(vps)}
		}
		// Shared-memory path: VertexProp views, no serialization. Validate
		// IDs to mirror the server-side checks.
		for _, l := range locals {
			if err := g.Local.CheckLocal(l); err != nil {
				return &InfoFuture{err: err}
			}
		}
		return &InfoFuture{batch: LocalBatch(g.Local, locals)}
	}
	c := g.Clients[dstShard]
	if c == nil && g.Router == nil {
		return &InfoFuture{err: fmt.Errorf("core: no client for shard %d", dstShard)}
	}
	if g.Cache != nil {
		return g.getNeighborInfosCached(obs.FromContext(ctx), dstShard, locals, cfg)
	}
	if ag := g.aggFor(dstShard); ag != nil {
		// Cross-query aggregation: the fetch joins the machine-wide pending
		// batch for dstShard and resolves from its row range of the merged
		// CSR response. Like the cache path, the flush is issued without the
		// query's ctx (it is shared state; WaitCtx still honors ctx for this
		// waiter) and always batches CSR, even under the Single/LoL modes.
		// Batches are epoch-pure: enqueueing at a different epoch than the
		// pending batch flushes it first (see agg.EnqueueTracedAt).
		return &InfoFuture{dstShard: dstShard, aggTicket: ag.EnqueueTracedAt(obs.FromContext(ctx), epoch, locals), remoteRows: int64(len(locals))}
	}
	switch cfg.Mode {
	case FetchBatchCompress:
		method := rpc.MethodGetNeighborInfos
		var payload []byte
		if epoch != 0 {
			// Epoch-pinned remote fetch: same CSR response shape, resolved
			// through the destination machine's delta store as of epoch.
			method = rpc.MethodGetNeighborInfosAt
			payload = wire.EncodeIDListAt(epoch, locals)
		} else {
			payload = wire.EncodeIDList(locals)
		}
		return &InfoFuture{mode: cfg.Mode, dstShard: dstShard, remoteRows: int64(len(locals)), rpcReqs: 1, reqBytes: int64(len(payload)), zeroCopy: cfg.ZeroCopy,
			futures: []respFuture{g.call(ctx, dstShard, method, payload)}}
	case FetchBatch:
		if epoch != 0 {
			return &InfoFuture{err: fmt.Errorf("core: epoch-pinned fetches require FetchBatchCompress (mode %v, epoch %d)", cfg.Mode, epoch)}
		}
		payload := wire.EncodeIDList(locals)
		return &InfoFuture{mode: cfg.Mode, dstShard: dstShard, remoteRows: int64(len(locals)), rpcReqs: 1, reqBytes: int64(len(payload)), zeroCopy: cfg.ZeroCopy,
			futures: []respFuture{g.call(ctx, dstShard, rpc.MethodGetNeighborInfosLoL, payload)}}
	default: // FetchSingle: sequential per-vertex round trips (see WaitCtx)
		if epoch != 0 {
			return &InfoFuture{err: fmt.Errorf("core: epoch-pinned fetches require FetchBatchCompress (mode %v, epoch %d)", cfg.Mode, epoch)}
		}
		// One 8-byte single-ID request per vertex (retries excluded; the
		// Retries counter tracks those separately).
		return &InfoFuture{mode: FetchSingle, dstShard: dstShard, remoteRows: int64(len(locals)),
			rpcReqs: int64(len(locals)), reqBytes: 8 * int64(len(locals)), zeroCopy: cfg.ZeroCopy,
			seqClient: c, seqRouter: g.Router, seqLocals: locals, retry: cfg.Retry}
	}
}

// cachedFetch is the per-future state of a cache-mediated remote fetch:
// row i of the eventual batch corresponds to the i-th requested local ID and
// is either a cache hit (filled at issue time) or resolved through a Flight.
type cachedFetch struct {
	rows    []cache.Row
	flights []*cache.Flight // nil at hit indices
}

// fetchGroup decodes one leader RPC response and fulfills the flights of
// every row it carries. resolve is idempotent and safe to call from any
// participant — the leader's wait path or any coalesced waiter that saw the
// response land first (see cache.Flight.AttachSource).
type fetchGroup struct {
	fut  respFuture
	csr  bool
	zc   bool // view decoders + pooled-buffer lifecycle (Config.ZeroCopy)
	once sync.Once
	// flights[i] is the flight for the i-th requested row.
	flights []*cache.Flight
}

// resolve must only be called after fut resolved (its Done channel closed).
func (fg *fetchGroup) resolve() {
	fg.once.Do(func() {
		payload, err := fg.fut.Wait()
		if err != nil {
			fg.fut.Release()
			fg.fail(err)
			return
		}
		// The flights copy each row into cache-owned storage (copyRow), so
		// the response payload and decode arena go home as soon as the demux
		// below finishes — the response is decoded exactly once, here, and
		// every waiter (leader and coalesced alike) reads the cache rows.
		var infos *wire.NeighborInfos
		var arena *mem.Arena
		if fg.zc {
			if fg.csr {
				infos, err = wire.DecodeCSRView(payload, nil)
			} else {
				arena = mem.GetArena()
				infos, err = wire.DecodeLoLView(payload, arena)
			}
		} else if fg.csr {
			infos, err = wire.DecodeCSR(payload)
		} else {
			infos, err = wire.DecodeLoL(payload)
		}
		defer func() {
			fg.fut.Release()
			mem.PutArena(arena)
		}()
		if err != nil {
			fg.fail(err)
			return
		}
		if infos.NumRows() != len(fg.flights) {
			fg.fail(fmt.Errorf("core: cache fetch returned %d rows, want %d", infos.NumRows(), len(fg.flights)))
			return
		}
		for i, fl := range fg.flights {
			fl.Fulfill(copyRow(infos, i), nil)
		}
	})
}

func (fg *fetchGroup) fail(err error) {
	for _, fl := range fg.flights {
		fl.Fulfill(cache.Row{}, err)
	}
}

// copyRow copies batch row i into cache-owned storage, so a cached hub row
// does not pin the whole decoded response. One int32 and one float32 backing
// array serve all four slices.
func copyRow(infos *wire.NeighborInfos, i int) cache.Row {
	l, s, w, d := infos.Row(i)
	deg := len(l)
	ints := make([]int32, 2*deg)
	floats := make([]float32, 2*deg)
	r := cache.Row{
		Locals:  ints[:deg:deg],
		Shards:  ints[deg:],
		Weights: floats[:deg:deg],
		WDegs:   floats[deg:],
		WDeg:    infos.RowWDeg[i],
	}
	copy(r.Locals, l)
	copy(r.Shards, s)
	copy(r.Weights, w)
	copy(r.WDegs, d)
	return r
}

// getNeighborInfosCached serves a remote fetch through the shared cache:
// hits resolve from memory immediately; misses elect one single-flight
// leader per vertex, and this future issues exactly one RPC covering the
// rows it leads. Coalesced rows ride on other queries' in-flight fetches.
//
// The leader RPC is deliberately issued without the query's context: the
// fetch is shared machine-wide state, and a query abandoning its wait (the
// per-waiter ctx in WaitCtx still honors cancellation) must not kill a
// response that other queries — and the cache — are waiting on. The wire
// format follows cfg.Mode (CSR for FetchBatchCompress, list-of-lists
// otherwise; the cache path always batches, even under FetchSingle).
func (g *DistGraphStorage) getNeighborInfosCached(sc obs.SpanContext, dstShard int32, locals []int32, cfg Config) *InfoFuture {
	cf := &cachedFetch{
		rows:    make([]cache.Row, len(locals)),
		flights: make([]*cache.Flight, len(locals)),
	}
	f := &InfoFuture{dstShard: dstShard, cached: cf, tr: g.Tracer, sc: sc}
	epoch := cfg.PinnedEpoch
	var leaderLocals []int32
	var leaderFlights []*cache.Flight
	for i, l := range locals {
		// Cache keys carry the epoch, so a row cached at one epoch is never
		// returned to a query pinned at another (internal/cache).
		row, hit, fl, leader := g.Cache.GetOrReserveAt(dstShard, l, epoch)
		switch {
		case hit:
			cf.rows[i] = row
			f.cacheHits++
		case leader:
			cf.flights[i] = fl
			leaderLocals = append(leaderLocals, l)
			leaderFlights = append(leaderFlights, fl)
		default:
			cf.flights[i] = fl
			f.cacheCoalesced++
		}
	}
	f.remoteRows = int64(len(leaderLocals))
	if len(leaderLocals) > 0 {
		if ag := g.aggFor(dstShard); ag != nil {
			// Cache and aggregator compose: the cache already deduplicated
			// IDENTICAL rows (hits and coalesced flights above); the rows
			// this query leads are DISTINCT, and the aggregator merges them
			// with other queries' leader rows bound for the same shard.
			t := ag.EnqueueTracedAt(sc, epoch, leaderLocals)
			f.aggTicket = t
			ar := &aggResolver{t: t, flights: leaderFlights}
			for _, fl := range leaderFlights {
				fl.AttachSource(t.Done(), ar.resolve)
			}
		} else {
			method := rpc.MethodGetNeighborInfosLoL
			csr := cfg.Mode == FetchBatchCompress
			if csr {
				method = rpc.MethodGetNeighborInfos
			}
			payload := wire.EncodeIDList(leaderLocals)
			if epoch != 0 {
				// Epoch-pinned leader fetch: the epoch-stamped method always
				// answers in the CSR shape.
				method, csr = rpc.MethodGetNeighborInfosAt, true
				payload = wire.EncodeIDListAt(epoch, leaderLocals)
			}
			f.rpcReqs = 1
			f.reqBytes = int64(len(payload))
			fg := &fetchGroup{
				// Leader RPCs are shared state (see doc comment), so the
				// direct and routed paths both issue without a query ctx —
				// but the trace context still rides the request frame.
				fut:     g.call(obs.ContextWith(context.Background(), sc), dstShard, method, payload),
				csr:     csr,
				zc:      cfg.ZeroCopy,
				flights: leaderFlights,
			}
			for _, fl := range leaderFlights {
				fl.AttachSource(fg.fut.Done(), fg.resolve)
			}
		}
	}
	return f
}

// aggResolver fulfills a cached fetch's leader flights from its aggregator
// ticket's row range. Like fetchGroup.resolve it is idempotent and driven by
// whichever participant observes the ticket resolve first, so an abandoned
// leader never strands coalesced waiters.
type aggResolver struct {
	t       *agg.Ticket
	once    sync.Once
	flights []*cache.Flight
}

// resolve must only be called after the ticket's Done channel closed.
func (ar *aggResolver) resolve() {
	ar.once.Do(func() {
		infos, off, err := ar.t.Result()
		if err != nil {
			ar.t.Release()
			for _, fl := range ar.flights {
				fl.Fulfill(cache.Row{}, err)
			}
			return
		}
		for i, fl := range ar.flights {
			fl.Fulfill(copyRow(infos, off+i), nil)
		}
		// Rows are now cache-owned copies; this ticket's share of the flush
		// payload goes home. The resolver — not the issuing InfoFuture — owns
		// the cached path's ticket, so an abandoned leader query still
		// returns the buffer.
		ar.t.Release()
	})
}

// waitCached assembles the batch for a cache-mediated fetch: hits are
// already in place; every other row waits on its flight under ctx. When the
// query is traced and at least one row is in flight, the wait is timed as a
// "cache:wait" span — the time this query spent blocked on its own leader
// RPC or on another query's in-flight fetch.
func (f *InfoFuture) waitCached(ctx context.Context) (NeighborBatch, error) {
	cf := f.cached
	var span obs.ActiveSpan
	waiting := false
	for i, fl := range cf.flights {
		if fl == nil {
			continue // cache hit, filled at issue time
		}
		if !waiting {
			waiting = true
			span = f.tr.StartSpan(f.sc, "cache:wait")
			span.SetShard(f.dstShard)
		}
		row, err := fl.Wait(ctx)
		if err != nil {
			f.err = wrapPeerErr(f.dstShard, err)
			span.SetErr(true)
			span.End()
			return nil, f.err
		}
		cf.rows[i] = row
	}
	span.End()
	f.batch = &rowBatch{rows: cf.rows}
	return f.batch, nil
}

// GetShardStats retrieves statistics about any shard — locally via a direct
// scan, remotely via RPC.
func (g *DistGraphStorage) GetShardStats(dstShard int32) (*wire.ShardStats, error) {
	if dstShard == g.ShardID {
		st := shard.ComputeStats(g.Local)
		return &wire.ShardStats{
			ShardID:      st.ShardID,
			NumShards:    g.Local.NumShards,
			NumCore:      int64(st.NumCore),
			NumEntries:   st.NumEntries,
			HaloNodes:    int64(st.HaloNodes),
			MemoryBytes:  st.MemoryBytes,
			RemoteFrac:   st.RemoteFrac,
			AvgOutDegree: st.AvgOutDegree,
		}, nil
	}
	if g.Clients[dstShard] == nil && g.Router == nil {
		return nil, fmt.Errorf("core: no client for shard %d", dstShard)
	}
	fut := g.call(context.Background(), dstShard, rpc.MethodGetShardStats, nil)
	payload, err := fut.Wait()
	if err != nil {
		fut.Release()
		return nil, wrapPeerErr(dstShard, err)
	}
	st, err := wire.DecodeShardStats(payload)
	fut.Release() // stats copied into st by the decode
	return st, err
}

// SampleOneNeighbor samples one neighbor for each listed core vertex of
// dstShard (random-walk step, Figure 4 right). Remote requests are issued
// under ctx.
func (g *DistGraphStorage) SampleOneNeighbor(ctx context.Context, dstShard int32, locals []int32, seed int64) *SampleFuture {
	if dstShard == g.ShardID {
		resp, err := SampleOneNeighborLocal(g.Local, g.Locator, locals, seed)
		return &SampleFuture{resp: resp, err: err}
	}
	if g.Clients[dstShard] == nil && g.Router == nil {
		return &SampleFuture{err: fmt.Errorf("core: no client for shard %d", dstShard)}
	}
	payload := wire.EncodeSampleRequest(&wire.SampleRequest{Seed: seed, Locals: locals})
	return &SampleFuture{fut: g.call(ctx, dstShard, rpc.MethodSampleOneNeighbor, payload)}
}
