package core

import (
	"container/heap"
	"context"
	"sort"
	"sync"

	"pprengine/internal/metrics"
	"pprengine/internal/pmap"
)

// Incremental SSPPR over the delta tier (ISSUE 10, ROADMAP item 4): a repeat
// query for a source whose previous reserve/residual state is cached does not
// start from r[src]=1 — it reuses the cached state and only repairs what the
// mutations since then actually disturbed.
//
// Forward push maintains the invariant
//
//	r = e_s − p/α + ((1−α)/α) · p·P
//
// where P(u,t) = w(u,t)/d(u) is the weighted transition matrix (0 for
// dangling u). When mutations change P to P′, the cached (p, r) pair is
// restored to a valid pair for the NEW graph — keeping p fixed — by the
// correction
//
//	r′(t) = r(t) + ((1−α)/α) · Σ_u p(u) · (w′(u,t)/d′(u) − w(u,t)/d(u))
//
// where the sum runs over mutated vertices u only: unmutated rows have
// identical old and new transition rows and contribute nothing. The corrected
// state is then drained by the ordinary driver loop from the (usually tiny)
// frontier of vertices the corrections re-activated.
//
// Two cases are exact to the bit against a fresh full run at the same epoch
// (under DeterministicPop, which makes runs reproducible at all):
//
//   - Footprint miss: no mutated vertex appears in keys(p) ∪ keys(r). Every
//     row the cached run fetched, and every neighbor degree it tested, is
//     unchanged — a fresh run would replay the identical pushes. The cached
//     state IS the new-epoch state; no work at all.
//   - Config.IncrementalExact with an overlapping footprint: full recompute.
//
// The default overlapping path (seeded re-push) converges to the same
// eps-approximation guarantee — signed residuals push back exactly like
// positive ones — but interleaves pushes differently than a fresh run, so its
// scores agree to approximation level, not bit level.

// ResidCache holds, per source vertex of this machine, the final state of its
// last completed SSPPR query: the reserve map p, the residual map r, and the
// epoch the run was pinned to. One cache per compute handle (sources are
// owner-compute, so a source's state never lives on two machines).
type ResidCache struct {
	mu      sync.Mutex
	max     int
	entries map[int32]*residState
	order   []int32 // insertion order, for FIFO eviction
}

type residState struct {
	epoch      uint64
	alpha, eps float64
	p, r       map[pmap.Key]float64
}

// NewResidCache builds a cache bounded to maxSources entries (<= 0 means the
// default 64). Eviction is FIFO by source insertion.
func NewResidCache(maxSources int) *ResidCache {
	if maxSources <= 0 {
		maxSources = 64
	}
	return &ResidCache{max: maxSources, entries: make(map[int32]*residState)}
}

// Len returns the number of cached sources.
func (c *ResidCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *ResidCache) get(src int32) *residState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[src]
}

func (c *ResidCache) put(src int32, st *residState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[src]; !ok {
		for len(c.entries) >= c.max && len(c.order) > 0 {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
		c.order = append(c.order, src)
	}
	c.entries[src] = st
}

// advance bumps a state's epoch in place after a footprint miss proved the
// state unchanged through (st.epoch, epoch].
func (c *ResidCache) advance(src int32, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.entries[src]; st != nil && st.epoch < epoch {
		st.epoch = epoch
	}
}

// IncStats describes how one incremental query was answered.
type IncStats struct {
	// Mode is "hit" (cached state valid as-is), "repush" (corrected re-push
	// from the mutation frontier), or "full" (fresh run; also the cold path).
	Mode string
	// Epoch is the mutation epoch the answer is consistent with.
	Epoch uint64
	// Mutated is the size of the mutated-vertex set diffed against the cached
	// footprint (0 on cold runs).
	Mutated int
	// Corrections is the number of residual entries the re-push adjusted.
	Corrections int
}

// RunSSPPRIncrementalTopK answers a top-k SSPPR query for a source of this
// machine, reusing cache's state for the source when the mutation delta since
// the cached epoch permits. It always refreshes the cache with the state it
// computed, so a stream of repeat queries pays the full push cost once per
// source, not once per mutation batch. Falls back to a plain full run when
// the handle has no delta store or the diff is unavailable (cached epoch
// compacted away).
func RunSSPPRIncrementalTopK(ctx context.Context, g *DistGraphStorage, cache *ResidCache, sourceLocal int32, k int, cfg Config, bd *metrics.Breakdown) ([]ScoredNode, QueryStats, IncStats, error) {
	ic := IncStats{Mode: "full"}
	if g.Delta == nil || cache == nil {
		top, stats, err := RunSSPPRTopK(ctx, g, sourceLocal, k, cfg, bd)
		return top, stats, ic, err
	}
	// Pin the epoch here so the diff below and every fetch of whichever path
	// runs agree on one snapshot. A caller-set PinnedEpoch is honored as-is.
	epoch := cfg.PinnedEpoch
	if epoch == 0 {
		if epoch = g.Delta.PinCurrent(); epoch != 0 {
			defer g.Delta.Unpin(epoch)
			cfg.PinnedEpoch = epoch
		}
	}
	ic.Epoch = epoch

	full := func() ([]ScoredNode, QueryStats, IncStats, error) {
		ic.Mode = "full"
		metrics.IncrementalFullRuns.Inc(1)
		m, stats, err := RunSSPPR(ctx, g, sourceLocal, cfg, bd)
		if err != nil {
			return nil, stats, ic, err
		}
		cache.put(sourceLocal, snapshotState(m, epoch, cfg))
		return m.TopK(k), stats, ic, nil
	}

	st := cache.get(sourceLocal)
	if st == nil || st.alpha != cfg.Alpha || st.eps != cfg.Eps || st.epoch > epoch {
		return full()
	}
	if st.epoch == epoch {
		// The cached run was pinned to exactly this epoch: its state is the
		// answer, verbatim.
		ic.Mode = "hit"
		metrics.IncrementalHits.Inc(1)
		return topKOfMap(st.p, k), QueryStats{}, ic, nil
	}
	mutated, ok := g.Delta.MutatedSince(st.epoch, epoch)
	if !ok {
		return full() // diff compacted away (or epoch raced ahead of the store)
	}
	ic.Mutated = len(mutated)
	overlap := false
	for _, mk := range mutated {
		key := pmap.Key{Local: mk.Local, Shard: mk.Shard}
		if _, inP := st.p[key]; inP {
			overlap = true
			break
		}
		if _, inR := st.r[key]; inR {
			overlap = true
			break
		}
	}
	if !overlap {
		// Footprint miss: the cached run never touched a mutated vertex, so a
		// fresh run at the new epoch would replay the same pushes bit for bit.
		ic.Mode = "hit"
		metrics.IncrementalHits.Inc(1)
		cache.advance(sourceLocal, epoch)
		return topKOfMap(st.p, k), QueryStats{}, ic, nil
	}
	if cfg.IncrementalExact {
		return full()
	}

	// Corrected re-push. Seed a fresh engine state with the cached reserves
	// and residuals, apply the invariant-restoring corrections, re-activate
	// whatever crossed the (possibly moved) threshold, and resume the
	// ordinary driver loop.
	ic.Mode = "repush"
	metrics.IncrementalRepushes.Inc(1)
	m := newEmptySSPPR(cfg)
	for key, v := range st.p {
		m.seedScore(key, v)
	}
	for key, v := range st.r {
		m.seedResidual(key, v)
	}
	sort.Slice(mutated, func(i, j int) bool {
		if mutated[i].Shard != mutated[j].Shard {
			return mutated[i].Shard < mutated[j].Shard
		}
		return mutated[i].Local < mutated[j].Local
	})
	factor := (1 - cfg.Alpha) / cfg.Alpha
	corr := make(map[pmap.Key]float64)
	// wdegAt collects each touched vertex's weighted degree at the NEW epoch,
	// for the activation tests below. New-row degree columns are already
	// patched to the new epoch by the store; an old-row-only neighbor keeps
	// its old value unless it is itself mutated, in which case its own
	// RowPair entry overwrites with the authoritative new degree.
	wdegAt := make(map[pmap.Key]float64)
	for _, mk := range mutated {
		ukey := pmap.Key{Local: mk.Local, Shard: mk.Shard}
		oldVP, newVP, okOld, okNew := g.Delta.RowPair(mk, st.epoch, epoch)
		if okNew {
			wdegAt[ukey] = float64(newVP.WDeg)
		}
		pv := st.p[ukey]
		if pv == 0 {
			// The cached run never pushed from u: u's transition row never
			// entered the state, so its change needs no correction. (u may
			// still hold residual; the threshold recheck below covers it.)
			continue
		}
		if okNew && newVP.WDeg > 0 {
			inv := pv * factor / float64(newVP.WDeg)
			for j := range newVP.Locals {
				t := pmap.Key{Local: newVP.Locals[j], Shard: newVP.Shards[j]}
				corr[t] += float64(newVP.Weights[j]) * inv
				if _, seen := wdegAt[t]; !seen {
					wdegAt[t] = float64(newVP.WDegs[j])
				}
			}
		}
		if okOld && oldVP.WDeg > 0 {
			inv := pv * factor / float64(oldVP.WDeg)
			for j := range oldVP.Locals {
				t := pmap.Key{Local: oldVP.Locals[j], Shard: oldVP.Shards[j]}
				corr[t] -= float64(oldVP.Weights[j]) * inv
				if _, seen := wdegAt[t]; !seen {
					wdegAt[t] = float64(oldVP.WDegs[j])
				}
			}
		}
	}
	ic.Corrections = len(corr)
	// Apply corrections in sorted key order so the seeded frontier — and with
	// DeterministicPop the whole re-push — is reproducible run to run.
	ckeys := make([]pmap.Key, 0, len(corr))
	for t := range corr {
		ckeys = append(ckeys, t)
	}
	sort.Slice(ckeys, func(i, j int) bool {
		if ckeys[i].Shard != ckeys[j].Shard {
			return ckeys[i].Shard < ckeys[j].Shard
		}
		return ckeys[i].Local < ckeys[j].Local
	})
	for _, t := range ckeys {
		nv := m.addResidual(t, corr[t])
		if nv > cfg.Eps*wdegAt[t] {
			m.activate(t)
		}
	}
	// Mutated vertices whose residual predates the corrections: their degree
	// — and with it the activation threshold eps·d(u) — may have moved, so
	// recheck even where no correction landed.
	for _, mk := range mutated {
		ukey := pmap.Key{Local: mk.Local, Shard: mk.Shard}
		if _, corrected := corr[ukey]; corrected {
			continue
		}
		if rv := m.residual(ukey); rv > cfg.Eps*wdegAt[ukey] {
			m.activate(ukey)
		}
	}
	stats, err := runSSPPRFrom(ctx, g, m, cfg, bd)
	if err != nil {
		return nil, stats, ic, err
	}
	cache.put(sourceLocal, snapshotState(m, epoch, cfg))
	return m.TopK(k), stats, ic, nil
}

// snapshotState copies a finished run's reserve and residual maps into a
// cache entry (plain maps — the engine state itself is Closed by the driver).
func snapshotState(m *SSPPR, epoch uint64, cfg Config) *residState {
	st := &residState{
		epoch: epoch,
		alpha: cfg.Alpha,
		eps:   cfg.Eps,
		p:     make(map[pmap.Key]float64, m.ScoreCount()),
		r:     make(map[pmap.Key]float64),
	}
	m.RangeScores(func(k pmap.Key, v float64) bool {
		st.p[k] = v
		return true
	})
	m.RangeResiduals(func(k pmap.Key, v float64) bool {
		if v != 0 {
			st.r[k] = v
		}
		return true
	})
	return st
}

// topKOfMap is SSPPR.TopK over a cached reserve map: same bounded min-heap,
// same deterministic tie-breaks, so a cache hit's ranking is byte-identical
// to the run that produced it.
func topKOfMap(p map[pmap.Key]float64, k int) []ScoredNode {
	if k <= 0 {
		return nil
	}
	h := make(scoredHeap, 0, k+1)
	for key, v := range p {
		s := ScoredNode{key, v}
		if len(h) < k {
			heap.Push(&h, s)
		} else if !h.worse(s) {
			h[0] = s
			heap.Fix(&h, 0)
		}
	}
	out := make([]ScoredNode, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(ScoredNode)
	}
	return out
}
