package core

import (
	"pprengine/internal/cache"
	"pprengine/internal/shard"
	"pprengine/internal/wire"
)

// NeighborBatch is the uniform view the push operator consumes, regardless
// of whether the rows came from the local shard (zero-copy VertexProp
// views) or from a decoded remote response.
type NeighborBatch interface {
	// NumRows returns the number of source vertices in the batch.
	NumRows() int
	// Row returns the i-th source vertex's neighbor tuples plus its own
	// weighted degree. Returned slices must be treated as read-only.
	Row(i int) (locals, shards []int32, weights, wdegs []float32, rowWDeg float32)
}

// localBatch wraps VertexProp views of the local shard — the shared-memory
// fast path (no serialization, no copies).
type localBatch struct {
	vps []shard.VertexProp
}

func (b *localBatch) NumRows() int { return len(b.vps) }

func (b *localBatch) Row(i int) (locals, shards []int32, weights, wdegs []float32, rowWDeg float32) {
	vp := b.vps[i]
	return vp.Locals, vp.Shards, vp.Weights, vp.WDegs, vp.WDeg
}

// LocalBatch builds the zero-copy batch for a list of core vertices of s.
// IDs must already be validated.
func LocalBatch(s *shard.Shard, locals []int32) NeighborBatch {
	vps := make([]shard.VertexProp, len(locals))
	for i, l := range locals {
		vps[i] = s.VertexProp(l)
	}
	return &localBatch{vps: vps}
}

// VPBatch wraps pre-fetched VertexProp views (e.g. halo-cache hits).
func VPBatch(vps []shard.VertexProp) NeighborBatch {
	return &localBatch{vps: vps}
}

// infosBatch adapts a decoded wire.NeighborInfos to the NeighborBatch view.
type infosBatch struct {
	n *wire.NeighborInfos
}

func (b *infosBatch) NumRows() int { return b.n.NumRows() }

func (b *infosBatch) Row(i int) (locals, shards []int32, weights, wdegs []float32, rowWDeg float32) {
	l, s, w, d := b.n.Row(i)
	return l, s, w, d, b.n.RowWDeg[i]
}

// InfosBatch wraps a decoded remote response.
func InfosBatch(n *wire.NeighborInfos) NeighborBatch { return &infosBatch{n: n} }

// aggBatch adapts one ticket's row range [off, off+rows) of a shared
// aggregated CSR response (internal/agg) to the NeighborBatch view. The
// decoded response is shared by every ticket of the flush; the offset keeps
// the demux zero-copy.
type aggBatch struct {
	n    *wire.NeighborInfos
	off  int
	rows int
}

func (b *aggBatch) NumRows() int { return b.rows }

func (b *aggBatch) Row(i int) (locals, shards []int32, weights, wdegs []float32, rowWDeg float32) {
	l, s, w, d := b.n.Row(b.off + i)
	return l, s, w, d, b.n.RowWDeg[b.off+i]
}

// rowBatch adapts rows assembled from the dynamic neighbor-row cache (hits,
// single-flight results) to the NeighborBatch view.
type rowBatch struct {
	rows []cache.Row
}

func (b *rowBatch) NumRows() int { return len(b.rows) }

func (b *rowBatch) Row(i int) (locals, shards []int32, weights, wdegs []float32, rowWDeg float32) {
	r := b.rows[i]
	return r.Locals, r.Shards, r.Weights, r.WDegs, r.WDeg
}

// BuildInfos assembles the wire response for a batch of core vertices of s —
// the server-side "compress into CSR" step.
func BuildInfos(s *shard.Shard, locals []int32) (*wire.NeighborInfos, error) {
	n := &wire.NeighborInfos{
		Indptr:  make([]int32, 1, len(locals)+1),
		RowWDeg: make([]float32, 0, len(locals)),
	}
	total := 0
	for _, l := range locals {
		if err := s.CheckLocal(l); err != nil {
			return nil, err
		}
		total += int(s.Indptr[l+1] - s.Indptr[l])
	}
	n.Locals = make([]int32, 0, total)
	n.Shards = make([]int32, 0, total)
	n.Weights = make([]float32, 0, total)
	n.WDegs = make([]float32, 0, total)
	for _, l := range locals {
		lo, hi := s.Indptr[l], s.Indptr[l+1]
		n.Locals = append(n.Locals, s.NbrLocal[lo:hi]...)
		n.Shards = append(n.Shards, s.NbrShard[lo:hi]...)
		n.Weights = append(n.Weights, s.NbrWeight[lo:hi]...)
		n.WDegs = append(n.WDegs, s.NbrWDeg[lo:hi]...)
		n.Indptr = append(n.Indptr, int32(len(n.Locals)))
		n.RowWDeg = append(n.RowWDeg, s.CoreWDeg[l])
	}
	if len(locals) == 0 {
		n.Indptr = []int32{}
	}
	return n, nil
}
