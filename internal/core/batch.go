package core

import (
	"pprengine/internal/cache"
	"pprengine/internal/delta"
	"pprengine/internal/mem"
	"pprengine/internal/shard"
	"pprengine/internal/wire"
)

// NeighborBatch is the uniform view the push operator consumes, regardless
// of whether the rows came from the local shard (zero-copy VertexProp
// views) or from a decoded remote response.
type NeighborBatch interface {
	// NumRows returns the number of source vertices in the batch.
	NumRows() int
	// Row returns the i-th source vertex's neighbor tuples plus its own
	// weighted degree. Returned slices must be treated as read-only.
	Row(i int) (locals, shards []int32, weights, wdegs []float32, rowWDeg float32)
}

// localBatch wraps VertexProp views of the local shard — the shared-memory
// fast path (no serialization, no copies).
type localBatch struct {
	vps []shard.VertexProp
}

func (b *localBatch) NumRows() int { return len(b.vps) }

func (b *localBatch) Row(i int) (locals, shards []int32, weights, wdegs []float32, rowWDeg float32) {
	vp := b.vps[i]
	return vp.Locals, vp.Shards, vp.Weights, vp.WDegs, vp.WDeg
}

// LocalBatch builds the zero-copy batch for a list of core vertices of s.
// IDs must already be validated.
func LocalBatch(s *shard.Shard, locals []int32) NeighborBatch {
	vps := make([]shard.VertexProp, len(locals))
	for i, l := range locals {
		vps[i] = s.VertexProp(l)
	}
	return &localBatch{vps: vps}
}

// VPBatch wraps pre-fetched VertexProp views (e.g. halo-cache hits).
func VPBatch(vps []shard.VertexProp) NeighborBatch {
	return &localBatch{vps: vps}
}

// infosBatch adapts a decoded wire.NeighborInfos to the NeighborBatch view.
type infosBatch struct {
	n *wire.NeighborInfos
}

func (b *infosBatch) NumRows() int { return b.n.NumRows() }

func (b *infosBatch) Row(i int) (locals, shards []int32, weights, wdegs []float32, rowWDeg float32) {
	l, s, w, d := b.n.Row(i)
	return l, s, w, d, b.n.RowWDeg[i]
}

// InfosBatch wraps a decoded remote response.
func InfosBatch(n *wire.NeighborInfos) NeighborBatch { return &infosBatch{n: n} }

// aggBatch adapts one ticket's row range [off, off+rows) of a shared
// aggregated CSR response (internal/agg) to the NeighborBatch view. The
// decoded response is shared by every ticket of the flush; the offset keeps
// the demux zero-copy.
type aggBatch struct {
	n    *wire.NeighborInfos
	off  int
	rows int
}

func (b *aggBatch) NumRows() int { return b.rows }

func (b *aggBatch) Row(i int) (locals, shards []int32, weights, wdegs []float32, rowWDeg float32) {
	l, s, w, d := b.n.Row(b.off + i)
	return l, s, w, d, b.n.RowWDeg[b.off+i]
}

// rowBatch adapts rows assembled from the dynamic neighbor-row cache (hits,
// single-flight results) to the NeighborBatch view.
type rowBatch struct {
	rows []cache.Row
}

func (b *rowBatch) NumRows() int { return len(b.rows) }

func (b *rowBatch) Row(i int) (locals, shards []int32, weights, wdegs []float32, rowWDeg float32) {
	r := b.rows[i]
	return r.Locals, r.Shards, r.Weights, r.WDegs, r.WDeg
}

// BuildInfos assembles the wire response for a batch of core vertices of s —
// the server-side "compress into CSR" step.
func BuildInfos(s *shard.Shard, locals []int32) (*wire.NeighborInfos, error) {
	return BuildInfosArena(s, locals, nil)
}

// BuildInfosArena is BuildInfos with every slice of the result carved from a
// (a nil arena falls back to the heap). The handlers use it with a pooled
// arena so a response batch costs no per-request heap allocation; the result
// is only valid until the arena is reset.
func BuildInfosArena(s *shard.Shard, locals []int32, a *mem.Arena) (*wire.NeighborInfos, error) {
	total := 0
	for _, l := range locals {
		if err := s.CheckLocal(l); err != nil {
			return nil, err
		}
		total += int(s.Indptr[l+1] - s.Indptr[l])
	}
	rows := len(locals)
	n := &wire.NeighborInfos{
		Indptr:  arenaI32(a, rows+1),
		RowWDeg: arenaF32(a, rows),
		Locals:  arenaI32(a, total),
		Shards:  arenaI32(a, total),
		Weights: arenaF32(a, total),
		WDegs:   arenaF32(a, total),
	}
	off := 0
	for i, l := range locals {
		lo, hi := s.Indptr[l], s.Indptr[l+1]
		end := off + int(hi-lo)
		copy(n.Locals[off:end], s.NbrLocal[lo:hi])
		copy(n.Shards[off:end], s.NbrShard[lo:hi])
		copy(n.Weights[off:end], s.NbrWeight[lo:hi])
		copy(n.WDegs[off:end], s.NbrWDeg[lo:hi])
		off = end
		n.Indptr[i+1] = int32(off)
		n.RowWDeg[i] = s.CoreWDeg[l]
	}
	if rows == 0 {
		// Match the historical wire shape exactly: an empty batch encodes a
		// zero-length indptr, not [0].
		n.Indptr = n.Indptr[:0]
	}
	return n, nil
}

// BuildInfosAtArena is the epoch-pinned sibling of BuildInfosArena: rows are
// resolved through the machine's delta store as of the given mutation epoch
// (base CSR + deltas-at-or-below-epoch, degree columns re-patched), then
// compressed into the same CSR wire shape. Backs MethodGetNeighborInfosAt.
func BuildInfosAtArena(store *delta.Store, sh int32, locals []int32, epoch uint64, a *mem.Arena) (*wire.NeighborInfos, error) {
	vps, err := store.VertexProps(sh, locals, epoch)
	if err != nil {
		return nil, err
	}
	total := 0
	for i := range vps {
		total += len(vps[i].Locals)
	}
	rows := len(vps)
	n := &wire.NeighborInfos{
		Indptr:  arenaI32(a, rows+1),
		RowWDeg: arenaF32(a, rows),
		Locals:  arenaI32(a, total),
		Shards:  arenaI32(a, total),
		Weights: arenaF32(a, total),
		WDegs:   arenaF32(a, total),
	}
	off := 0
	for i := range vps {
		vp := &vps[i]
		end := off + len(vp.Locals)
		copy(n.Locals[off:end], vp.Locals)
		copy(n.Shards[off:end], vp.Shards)
		copy(n.Weights[off:end], vp.Weights)
		copy(n.WDegs[off:end], vp.WDegs)
		off = end
		n.Indptr[i+1] = int32(off)
		n.RowWDeg[i] = vp.WDeg
	}
	if rows == 0 {
		n.Indptr = n.Indptr[:0] // match the historical empty-batch wire shape
	}
	return n, nil
}

func arenaI32(a *mem.Arena, n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	return a.I32(n)
}

func arenaF32(a *mem.Arena, n int) []float32 {
	if a == nil {
		return make([]float32, n)
	}
	return a.F32(n)
}
