package core

import (
	"context"
	"fmt"
	"time"

	"pprengine/internal/admit"
	"pprengine/internal/graph"
	"pprengine/internal/metrics"
	"pprengine/internal/rpc"
	"pprengine/internal/wire"
)

// Owner-compute query dispatch: the paper assigns each SSPPR query to the
// machine hosting the source's partition (§3.1). EnableQueryService turns a
// storage server into such an owner: remote clients submit a QueryRequest
// and the server runs the full distributed SSPPR (using its own compute
// handle to fetch from peers) and returns the ranked results. Thin clients
// then need no shard at all.

// EnableQueryService registers the SSPPR query handler. compute must be a
// handle on the same shard this server stores (its peer clients are used
// for remote fetches during query execution).
//
// Each query runs under a server-side deadline: the client's propagated
// TimeoutMs when present, otherwise cfg.QueryTimeout (zero disables). The
// server therefore stops computing — including the local push work — once
// the client has given up on the request.
func (ss *StorageServer) EnableQueryService(compute *DistGraphStorage, cfg Config) error {
	if compute.Local != ss.Shard {
		return fmt.Errorf("core: query service compute handle is for shard %d, server stores shard %d",
			compute.ShardID, ss.Shard.ShardID)
	}
	// Context-aware registration: the handler ctx carries the client's trace
	// context when the query request frame was traced, so the owner-side
	// "query" span (and everything under it) joins the coordinator's trace.
	ss.srv.HandleCtx(rpc.MethodSSPPRQuery, func(ctx context.Context, p []byte) ([]byte, error) {
		req, err := wire.DecodeQueryRequest(p)
		if err != nil {
			return nil, err
		}
		qcfg := cfg
		if req.Alpha > 0 {
			qcfg.Alpha = req.Alpha
		}
		if req.Eps > 0 {
			qcfg.Eps = req.Eps
		}
		if req.TimeoutMs > 0 {
			qcfg.QueryTimeout = time.Duration(req.TimeoutMs) * time.Millisecond
		}
		// Admission identity rides the request: the owner's controller (when
		// attached) charges the client's tenant bucket and queues under the
		// client's priority, not the server's defaults.
		qcfg.Tenant = req.Tenant
		qcfg.Priority = int(req.Priority)
		start := time.Now()
		var bd metrics.Breakdown
		top, stats, err := RunSSPPRTopK(ctx, compute, req.SourceLocal, int(req.TopK), qcfg, &bd)
		ss.queryPhases.Merge(&bd)
		ss.queriesServed.Add(1)
		if ss.QueryLatency != nil {
			ss.QueryLatency.Observe(time.Since(start).Seconds())
		}
		if err != nil {
			ss.queryFailures.Add(1)
			return nil, err
		}
		resp := &wire.QueryResponse{
			Globals:    make([]int32, len(top)),
			Scores:     make([]float64, len(top)),
			Iterations: int32(stats.Iterations),
			Pushes:     stats.Pushes,
			Touched:    int32(stats.TouchedNodes),
		}
		for i, sn := range top {
			resp.Globals[i] = int32(compute.Locator.Global(sn.Key.Shard, sn.Key.Local))
			resp.Scores[i] = sn.Score
		}
		return wire.EncodeQueryResponse(resp), nil
	})
	return nil
}

// QueryClient submits SSPPR queries to owner machines. It holds one RPC
// client per shard plus the locator, and routes each query by the source's
// owner — the thin-client side of the owner-compute rule.
type QueryClient struct {
	clients []*rpc.Client
	locate  func(graph.NodeID) (int32, int32)

	// Retry, when MaxAttempts != 0, retries transient transport failures
	// of whole queries with bounded exponential backoff. Deadline expiry is
	// never retried.
	Retry rpc.RetryPolicy

	// Tenant and Priority identify this client to the owner's admission
	// controller. Both zero values keep the wire encoding at the legacy
	// layout, so default-config clients interoperate with older servers.
	Tenant   string
	Priority int
}

// NewQueryClient builds a query client from per-shard connections and a
// locate function (global -> shard, local), typically locator.Locate.
func NewQueryClient(clients []*rpc.Client, locate func(graph.NodeID) (int32, int32)) *QueryClient {
	return &QueryClient{clients: clients, locate: locate}
}

// Query runs a top-k SSPPR query for a global source node on its owner
// machine. alpha/eps <= 0 use the server's defaults. ctx bounds the whole
// round trip; its deadline (when set) is also propagated in the request so
// the owner aborts server-side work the client will never consume.
func (qc *QueryClient) Query(ctx context.Context, source graph.NodeID, topK int, alpha, eps float64) (*wire.QueryResponse, error) {
	sh, local := qc.locate(source)
	if sh < 0 {
		return nil, fmt.Errorf("core: node %d is unknown to this locator (added after the locator file was written?)", source)
	}
	if int(sh) >= len(qc.clients) || qc.clients[sh] == nil {
		return nil, fmt.Errorf("core: no connection to owner shard %d of node %d", sh, source)
	}
	req := &wire.QueryRequest{
		SourceLocal: local,
		TopK:        int32(topK),
		Alpha:       alpha,
		Eps:         eps,
		Tenant:      qc.Tenant,
		Priority:    int32(qc.Priority),
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.TimeoutMs = uint32(ms)
		} else {
			req.TimeoutMs = 1 // already (nearly) expired; tell the server anyway
		}
	}
	payload := wire.EncodeQueryRequest(req)
	var resp []byte
	var err error
	if qc.Retry.MaxAttempts != 0 {
		resp, err = qc.clients[sh].CallRetry(ctx, rpc.MethodSSPPRQuery, payload, qc.Retry)
	} else {
		resp, err = qc.clients[sh].SyncCallCtx(ctx, rpc.MethodSSPPRQuery, payload)
	}
	if err != nil {
		// Sheds cross the RPC boundary as strings; remap so callers can
		// errors.Is(err, admit.ErrShed) and read the retry-after hint.
		return nil, admit.FromRemote(err)
	}
	return wire.DecodeQueryResponse(resp)
}
