package core

import (
	"context"
	"math/rand"

	"pprengine/internal/metrics"
)

// RunTensorRandomWalk is the tensor-library-style Random Walk baseline: it
// has no server-side sampling operator, so each step fetches the full
// neighbor information of the frontier (batched, CSR-compressed — the same
// transport as everything else) and samples the next hop client-side with
// dense operations. Compared to RunRandomWalk it ships whole adjacency
// lists instead of single sampled IDs, which is the structural reason the
// paper's tensor Random Walk stays within ~2x of the native one while
// tensor Forward Push does not. ctx is checked before every step and on
// every fetch wait.
func RunTensorRandomWalk(ctx context.Context, g *DistGraphStorage, rootLocals []int32, walkLen int, seed int64, bd *metrics.Breakdown) ([][]int32, error) {
	n := len(rootLocals)
	rng := rand.New(rand.NewSource(seed))
	summary := make([][]int32, n)
	curLocal := make([]int32, n)
	curShard := make([]int32, n)
	dead := make([]bool, n)
	for i, l := range rootLocals {
		if err := g.Local.CheckLocal(l); err != nil {
			return nil, err
		}
		summary[i] = append(summary[i], int32(g.Locator.Global(g.ShardID, l)))
		curLocal[i] = l
		curShard[i] = g.ShardID
	}
	idxByShard := make([][]int32, g.NumShards)
	localsByShard := make([][]int32, g.NumShards)
	for step := 0; step < walkLen; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for j := range idxByShard {
			idxByShard[j] = idxByShard[j][:0]
			localsByShard[j] = localsByShard[j][:0]
		}
		alive := 0
		for i := 0; i < n; i++ {
			if dead[i] {
				continue
			}
			alive++
			sh := curShard[i]
			idxByShard[sh] = append(idxByShard[sh], int32(i))
			localsByShard[sh] = append(localsByShard[sh], curLocal[i])
		}
		if alive == 0 {
			break
		}
		futs := make([]*InfoFuture, g.NumShards)
		fetchCfg := Config{Mode: FetchBatchCompress}
		for j := int32(0); j < g.NumShards; j++ {
			if len(localsByShard[j]) == 0 || j == g.ShardID {
				continue
			}
			futs[j] = g.GetNeighborInfos(ctx, j, localsByShard[j], fetchCfg)
		}
		if len(localsByShard[g.ShardID]) > 0 {
			futs[g.ShardID] = g.GetNeighborInfos(ctx, g.ShardID, localsByShard[g.ShardID], fetchCfg)
		}
		for j := int32(0); j < g.NumShards; j++ {
			if futs[j] == nil {
				continue
			}
			phase := metrics.PhaseRemoteFetch
			if j == g.ShardID {
				phase = metrics.PhaseLocalFetch
			}
			var batch NeighborBatch
			var err error
			bd.Time(phase, func() { batch, err = futs[j].WaitCtx(ctx) })
			if err != nil {
				return nil, err
			}
			stop := bd.Start(metrics.PhasePush)
			for k, wi := range idxByShard[j] {
				locals, shards, weights, _, rowWDeg := batch.Row(k)
				if len(locals) == 0 || rowWDeg <= 0 {
					dead[wi] = true
					summary[wi] = append(summary[wi], summary[wi][len(summary[wi])-1])
					continue
				}
				target := rng.Float64() * float64(rowWDeg)
				acc := 0.0
				pick := len(locals) - 1
				for x, w := range weights {
					acc += float64(w)
					if acc >= target {
						pick = x
						break
					}
				}
				curLocal[wi] = locals[pick]
				curShard[wi] = shards[pick]
				summary[wi] = append(summary[wi], int32(g.Locator.Global(shards[pick], locals[pick])))
			}
			stop()
		}
	}
	for i := 0; i < n; i++ {
		for len(summary[i]) < walkLen+1 {
			summary[i] = append(summary[i], summary[i][len(summary[i])-1])
		}
	}
	return summary, nil
}
