package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"pprengine/internal/rpc"
)

// TestServerFailureMidQueryReturnsError kills a remote storage server while
// queries are running: the engine must surface an error promptly instead of
// hanging or panicking.
func TestServerFailureMidQueryReturnsError(t *testing.T) {
	g := testGraph(41, 2000, 14000)
	storages, _, _, cleanup := testDeployment(t, g, 2)
	defer cleanup()

	// Locate the server for shard 1 by closing its client connections via
	// a fresh deployment-specific kill: we re-create a server here instead
	// of reaching into testDeployment internals.
	// Simpler: close the remote client mid-run; the driver sees the same
	// failure mode (connection gone => pending futures fail).
	errCh := make(chan error, 1)
	go func() {
		var lastErr error
		for i := int32(0); i < 50; i++ {
			_, _, err := RunSSPPR(context.Background(), storages[0], i%int32(storages[0].Local.NumCore()), DefaultConfig(), nil)
			if err != nil {
				lastErr = err
				break
			}
		}
		errCh <- lastErr
	}()
	time.Sleep(10 * time.Millisecond)
	storages[0].Clients[1].Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("expected an error after killing the remote connection")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query hung after remote failure")
	}
}

// TestConcurrentQueriesSameProcess runs many SSPPR queries concurrently
// through the same DistGraphStorage handle (each query owns its own state;
// the handle and its RPC clients are shared).
func TestConcurrentQueriesSameProcess(t *testing.T) {
	g := testGraph(42, 500, 3000)
	storages, _, _, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	st := storages[0]
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	results := make([]map[int32]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m, _, err := RunSSPPR(context.Background(), st, 3, DefaultConfig(), nil)
			if err != nil {
				errs <- err
				return
			}
			results[w] = ScoresGlobal(st, m)
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All concurrent runs of the same query agree (same source, same
	// config; pushes within one query are still order-dependent only
	// within eps-approximation bounds).
	for w := 1; w < workers; w++ {
		if len(results[w]) == 0 {
			t.Fatalf("worker %d produced nothing", w)
		}
		for v, x := range results[0] {
			d := results[w][v] - x
			if d > 5e-4 || d < -5e-4 {
				t.Fatalf("worker %d diverges at node %d: %v vs %v", w, v, results[w][v], x)
			}
		}
	}
}

// TestQueryAfterServerRestart verifies a fresh client can resume service
// after the server side was closed and a new one started on the shard.
func TestQueryAfterServerRestart(t *testing.T) {
	g := testGraph(43, 200, 1200)
	storages, shards, loc, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	// Baseline query works.
	if _, _, err := RunSSPPR(context.Background(), storages[0], 0, DefaultConfig(), nil); err != nil {
		t.Fatal(err)
	}
	// Start a second server for shard 1 and point a new handle at it.
	srv2 := NewStorageServer(shards[1], loc)
	addr, err := srv2.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cl, err := dialForTest(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st2 := NewDistGraphStorage(0, shards[0], loc, clientsWith(2, 1, cl))
	if _, _, err := RunSSPPR(context.Background(), st2, 0, DefaultConfig(), nil); err != nil {
		t.Fatalf("query through restarted server failed: %v", err)
	}
}

func dialForTest(addr string) (*rpc.Client, error) {
	return rpc.Dial(addr, rpc.LatencyModel{})
}

func clientsWith(k int, idx int32, c *rpc.Client) []*rpc.Client {
	out := make([]*rpc.Client, k)
	out[idx] = c
	return out
}
