package core

import (
	"context"
	"math"
	"testing"

	"pprengine/internal/graph"
	"pprengine/internal/rpc"
)

func TestQueryServiceEndToEnd(t *testing.T) {
	g := testGraph(51, 300, 1800)
	// Build a dedicated 2-shard deployment with query service enabled.
	storages, shards, loc, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	// testDeployment's servers are not exported; start a second pair of
	// servers with query service on top of the same shards, wiring their
	// compute handles through fresh clients.
	servers := make([]*StorageServer, 2)
	addrs := make([]string, 2)
	var err error
	for i := range servers {
		servers[i] = NewStorageServer(shards[i], loc)
		addrs[i], err = servers[i].Start()
		if err != nil {
			t.Fatal(err)
		}
		defer servers[i].Close()
	}
	var opened []*rpc.Client
	defer func() {
		for _, c := range opened {
			c.Close()
		}
	}()
	for i := range servers {
		clients := make([]*rpc.Client, 2)
		for j := range servers {
			if j == i {
				continue
			}
			c, err := rpc.Dial(addrs[j], rpc.LatencyModel{})
			if err != nil {
				t.Fatal(err)
			}
			clients[j] = c
			opened = append(opened, c)
		}
		compute := NewDistGraphStorage(int32(i), shards[i], loc, clients)
		if err := servers[i].EnableQueryService(compute, DefaultConfig()); err != nil {
			t.Fatal(err)
		}
	}
	// Thin client: connections to both owners, no local shard.
	thin := make([]*rpc.Client, 2)
	for i := range thin {
		c, err := rpc.Dial(addrs[i], rpc.LatencyModel{})
		if err != nil {
			t.Fatal(err)
		}
		thin[i] = c
		opened = append(opened, c)
	}
	qc := NewQueryClient(thin, loc.Locate)

	// Query two sources owned by different machines; check against local
	// execution.
	for _, src := range []graph.NodeID{shards[0].CoreGlobal[1], shards[1].CoreGlobal[2]} {
		resp, err := qc.Query(context.Background(), src, 10, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Globals) != 10 || len(resp.Scores) != 10 {
			t.Fatalf("results: %d/%d", len(resp.Globals), len(resp.Scores))
		}
		if resp.Pushes == 0 || resp.Iterations == 0 || resp.Touched == 0 {
			t.Fatalf("stats empty: %+v", resp)
		}
		// Source ranks first with score >= alpha.
		if resp.Globals[0] != int32(src) || resp.Scores[0] < 0.462 {
			t.Fatalf("top-1 = %d (%.3f), want source %d", resp.Globals[0], resp.Scores[0], src)
		}
		// Compare with a direct local run on the owner.
		sh, lc := loc.Locate(src)
		top, _, err := RunSSPPRTopK(context.Background(), storages[sh], lc, 10, DefaultConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range top {
			wantGlobal := int32(loc.Global(top[i].Key.Shard, top[i].Key.Local))
			if resp.Globals[i] != wantGlobal && math.Abs(resp.Scores[i]-top[i].Score) > 5e-4 {
				t.Fatalf("rank %d: remote (%d, %v) vs local (%d, %v)",
					i, resp.Globals[i], resp.Scores[i], wantGlobal, top[i].Score)
			}
		}
	}
	// Custom alpha/eps pass through.
	resp, err := qc.Query(context.Background(), shards[0].CoreGlobal[0], 5, 0.85, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Scores[0] < 0.85 {
		t.Fatalf("alpha override ignored: top score %v", resp.Scores[0])
	}
}

func TestEnableQueryServiceWrongShard(t *testing.T) {
	g := testGraph(52, 100, 600)
	_, shards, loc, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	srv := NewStorageServer(shards[0], loc)
	defer srv.Close()
	compute := NewDistGraphStorage(1, shards[1], loc, make([]*rpc.Client, 2))
	if err := srv.EnableQueryService(compute, DefaultConfig()); err == nil {
		t.Fatal("expected shard mismatch error")
	}
}

func TestQueryClientNoConnection(t *testing.T) {
	qc := NewQueryClient(make([]*rpc.Client, 2), func(graph.NodeID) (int32, int32) { return 1, 0 })
	if _, err := qc.Query(context.Background(), 5, 3, 0, 0); err == nil {
		t.Fatal("expected missing-connection error")
	}
}
