package agg

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"pprengine/internal/obs"
	"pprengine/internal/rpc"
	"pprengine/internal/wire"
)

// featFakeTransport answers merged MethodFetchFeatures requests in-process:
// row for local id v is [v, v+0.25, v+0.5, ...] at the configured dim, so a
// test can verify each ticket got exactly its own row range of the merged
// response. A non-nil gate holds every response until the gate closes,
// letting tests force tickets to pile into one flush.
type featFakeTransport struct {
	dim   int
	gate  chan struct{}
	calls atomic.Int64
	fail  error
	// short truncates responses to this many rows (0 = answer fully), to
	// exercise the row-count validation.
	short int
}

type featFakeResponse struct {
	tr      *featFakeTransport
	payload []byte
}

func (r *featFakeResponse) Wait() ([]byte, error) {
	if r.tr.gate != nil {
		<-r.tr.gate
	}
	if r.tr.fail != nil {
		return nil, r.tr.fail
	}
	ids, err := wire.DecodeIDList(r.payload)
	if err != nil {
		return nil, err
	}
	if r.tr.short > 0 && len(ids) > r.tr.short {
		ids = ids[:r.tr.short]
	}
	feats := make([]float32, 0, len(ids)*r.tr.dim)
	for _, v := range ids {
		for j := 0; j < r.tr.dim; j++ {
			feats = append(feats, float32(v)+float32(j)*0.25)
		}
	}
	return wire.EncodeFeatureResponse(r.tr.dim, feats), nil
}

func (r *featFakeResponse) Release() {}

func (t *featFakeTransport) Call(sc obs.SpanContext, m rpc.Method, payload []byte) Response {
	if m != rpc.MethodFetchFeatures {
		panic("unexpected method")
	}
	t.calls.Add(1)
	return &featFakeResponse{tr: t, payload: payload}
}

func wantTicketRows(t *testing.T, tk *FeatTicket, locals []int32, dim int) {
	t.Helper()
	feats, d, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d != dim || len(feats) != len(locals)*dim {
		t.Fatalf("ticket got %d floats at dim %d, want %d rows x %d", len(feats), d, len(locals), dim)
	}
	for i, v := range locals {
		for j := 0; j < dim; j++ {
			want := float32(v) + float32(j)*0.25
			if feats[i*dim+j] != want {
				t.Fatalf("row %d (local %d) col %d = %v, want %v", i, v, j, feats[i*dim+j], want)
			}
		}
	}
}

func TestFeatureAggregatorMergesAndDemuxes(t *testing.T) {
	tr := &featFakeTransport{dim: 4, gate: make(chan struct{})}
	a := NewFeatureTransport(tr, Options{Window: time.Hour, MaxRows: 4})

	// The first enqueue opens a flush immediately; the gate keeps it in
	// flight so the next two tickets batch together behind it, and the row
	// cap (not the hour-long window) issues the merged flush — every
	// trigger in this test is deterministic.
	t1 := a.EnqueueTraced(obs.SpanContext{}, []int32{10, 11})
	t2 := a.EnqueueTraced(obs.SpanContext{}, []int32{20})
	t3 := a.EnqueueTraced(obs.SpanContext{}, []int32{30, 31, 32})
	close(tr.gate)

	wantTicketRows(t, t1, []int32{10, 11}, 4)
	wantTicketRows(t, t2, []int32{20}, 4)
	wantTicketRows(t, t3, []int32{30, 31, 32}, 4)
	t1.Release()
	t2.Release()
	t3.Release()

	if got := tr.calls.Load(); got != 2 {
		t.Fatalf("wire calls = %d, want 2 (t1 alone, then t2+t3 merged)", got)
	}
	st := a.Stats()
	if st.Flushes != 2 || st.Rows != 6 || st.Tickets != 3 || st.Shared != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Wire accounting lands on each flush's opener, never on the riders.
	if reqs, bytes := t1.Accounting(); reqs != 1 || bytes == 0 {
		t.Fatalf("t1 accounting = %d, %d", reqs, bytes)
	}
	if reqs, _ := t2.Accounting(); reqs != 1 {
		t.Fatalf("t2 opened the merged flush, accounting = %d", reqs)
	}
	if reqs, _ := t3.Accounting(); reqs != 0 {
		t.Fatalf("t3 rode a flush but was charged %d requests", reqs)
	}
}

func TestFeatureAggregatorEmptyTicket(t *testing.T) {
	tr := &featFakeTransport{dim: 4}
	a := NewFeatureTransport(tr, Options{Window: time.Millisecond})
	tk := a.EnqueueTraced(obs.SpanContext{}, nil)
	select {
	case <-tk.Done():
	default:
		t.Fatal("empty ticket not resolved immediately")
	}
	feats, _, err := tk.Result()
	if err != nil || len(feats) != 0 {
		t.Fatalf("empty ticket result = %v, %v", feats, err)
	}
	if tr.calls.Load() != 0 {
		t.Fatal("empty ticket reached the wire")
	}
}

func TestFeatureAggregatorErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	tr := &featFakeTransport{dim: 4, fail: boom, gate: make(chan struct{})}
	a := NewFeatureTransport(tr, Options{Window: time.Millisecond})
	t1 := a.EnqueueTraced(obs.SpanContext{}, []int32{1})
	t2 := a.EnqueueTraced(obs.SpanContext{}, []int32{2})
	close(tr.gate)
	if _, _, err := t1.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("t1 err = %v", err)
	}
	if _, _, err := t2.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("t2 err = %v", err)
	}
}

func TestFeatureAggregatorValidatesRowCount(t *testing.T) {
	// The peer answers fewer rows than the merged request asked for: the
	// flush must fail instead of mis-slicing row ranges across tickets.
	tr := &featFakeTransport{dim: 4, short: 1}
	a := NewFeatureTransport(tr, Options{Window: time.Millisecond})
	tk := a.EnqueueTraced(obs.SpanContext{}, []int32{1, 2, 3})
	if _, _, err := tk.Wait(context.Background()); err == nil {
		t.Fatal("short response was not rejected")
	}
}

func TestFeatureAggregatorMaxRowsFlush(t *testing.T) {
	tr := &featFakeTransport{dim: 2, gate: make(chan struct{})}
	a := NewFeatureTransport(tr, Options{Window: time.Hour, MaxRows: 3})
	t1 := a.EnqueueTraced(obs.SpanContext{}, []int32{1}) // opens flush 1
	// Flush 1 is gated in flight and the window is effectively infinite:
	// only the row cap can trigger the second flush.
	t2 := a.EnqueueTraced(obs.SpanContext{}, []int32{2})
	t3 := a.EnqueueTraced(obs.SpanContext{}, []int32{3, 4})
	close(tr.gate)
	wantTicketRows(t, t1, []int32{1}, 2)
	wantTicketRows(t, t2, []int32{2}, 2)
	wantTicketRows(t, t3, []int32{3, 4}, 2)
	if got := tr.calls.Load(); got != 2 {
		t.Fatalf("wire calls = %d, want 2", got)
	}
}

func TestFeatureAggregatorWaitHonorsContext(t *testing.T) {
	tr := &featFakeTransport{dim: 2, gate: make(chan struct{})}
	defer close(tr.gate)
	a := NewFeatureTransport(tr, Options{Window: time.Millisecond})
	tk := a.EnqueueTraced(obs.SpanContext{}, []int32{1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := tk.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}
