package agg

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pprengine/internal/metrics"
	"pprengine/internal/obs"
	"pprengine/internal/rpc"
	"pprengine/internal/wire"
)

// FeatTicket is one enqueued feature fetch's handle on its share of a
// flush: rows [off, off+len(locals)) of the merged flat feature response.
type FeatTicket struct {
	locals []int32
	done   chan struct{}

	// Resolved by the flush completion, published by closing done. feats is
	// this ticket's own row range ([Rows() x dim], row-major) — unlike the
	// CSR ticket there is no offset to apply.
	feats []float32
	dim   int
	err   error

	// Wire accounting, attributed to the ticket that opened the flush.
	wireReqs  int64
	wireBytes int64

	sc obs.SpanContext

	// share refcounts the flush's pooled response payload when the decode
	// aliased it; nil when the rows were copied out.
	share    *flushShare
	released atomic.Bool
}

// Rows returns the number of feature rows this ticket requested.
func (t *FeatTicket) Rows() int { return len(t.locals) }

// Done returns a channel closed when the ticket's flush has resolved.
func (t *FeatTicket) Done() <-chan struct{} { return t.done }

// Wait blocks until the ticket resolves or ctx ends, returning this
// ticket's row range of the merged response plus the feature dimension.
// Abandoning a Wait detaches only this waiter.
func (t *FeatTicket) Wait(ctx context.Context) (feats []float32, dim int, err error) {
	select {
	case <-t.done:
		return t.feats, t.dim, t.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// Result returns the resolved rows, dimension and error. It must only be
// called after Done() closed.
func (t *FeatTicket) Result() (feats []float32, dim int, err error) {
	return t.feats, t.dim, t.err
}

// Release returns this ticket's share of the flush's decoded response. With
// ZeroCopy the rows alias the pooled response payload, so the caller must
// not touch the slice returned by Wait/Result after Release; the last
// ticket's Release returns the payload to its pool. Idempotent, nil-safe,
// and a no-op before the ticket resolves.
func (t *FeatTicket) Release() {
	if t == nil {
		return
	}
	select {
	case <-t.done:
	default:
		return
	}
	if t.released.CompareAndSwap(false, true) {
		t.share.release()
	}
}

// Accounting returns the wire requests and request bytes attributed to this
// ticket (non-zero only for the flush opener; zeros before resolution).
func (t *FeatTicket) Accounting() (requests, bytes int64) {
	select {
	case <-t.done:
		return t.wireReqs, t.wireBytes
	default:
		return 0, 0
	}
}

// FeatureAggregator coalesces concurrent FetchFeatures calls bound for one
// destination shard into merged MethodFetchFeatures requests, exactly as
// Aggregator does for neighbor fetches: same flush triggers (idle /
// window / row cap), same shared-machine-state contract, same opener-charged
// wire accounting. The response is a flat [total rows x dim] block, so the
// demux is a plain row-range slice per ticket instead of a CSR offset.
type FeatureAggregator struct {
	tr   Transport
	opts Options

	mu       sync.Mutex
	pending  []*FeatTicket
	rows     int
	inFlight int
	timer    *time.Timer
	gen      uint64

	flushes    atomic.Int64
	flushedRow atomic.Int64
	tickets    atomic.Int64
	shared     atomic.Int64
}

// NewFeature returns a feature aggregator flushing over c. A nil client
// yields a nil aggregator (the disabled value).
func NewFeature(c *rpc.Client, opts Options) *FeatureAggregator {
	if c == nil {
		return nil
	}
	return NewFeatureTransport(clientTransport{c}, opts)
}

// NewFeatureTransport returns a feature aggregator over an arbitrary
// transport (the replication layer routes flushes this way). A nil
// transport yields a nil aggregator.
func NewFeatureTransport(tr Transport, opts Options) *FeatureAggregator {
	if tr == nil {
		return nil
	}
	return &FeatureAggregator{tr: tr, opts: opts}
}

// EnqueueTraced adds a feature fetch for locals to the pending batch and
// returns its ticket. Flush scheduling follows the package rules: a flush
// is shared machine state issued without any per-query context.
func (a *FeatureAggregator) EnqueueTraced(sc obs.SpanContext, locals []int32) *FeatTicket {
	t := &FeatTicket{locals: locals, done: make(chan struct{}), sc: sc}
	if len(locals) == 0 {
		t.feats = []float32{}
		close(t.done)
		return t
	}
	a.tickets.Add(1)
	a.mu.Lock()
	opened := len(a.pending) == 0
	a.pending = append(a.pending, t)
	a.rows += len(locals)
	switch {
	case a.inFlight == 0 && opened:
		a.flushLocked()
	case a.rows >= a.opts.maxRows():
		a.flushLocked()
	case a.timer == nil:
		gen := a.gen
		a.timer = time.AfterFunc(a.opts.window(), func() { a.timedFlush(gen) })
	}
	a.mu.Unlock()
	return t
}

func (a *FeatureAggregator) timedFlush(gen uint64) {
	a.mu.Lock()
	if a.gen == gen && len(a.pending) > 0 {
		a.flushLocked()
	}
	a.mu.Unlock()
}

// flushLocked sends the pending batch as one wire request. Caller holds a.mu.
func (a *FeatureAggregator) flushLocked() {
	batch := a.pending
	a.pending = nil
	rows := a.rows
	a.rows = 0
	a.gen++
	if a.timer != nil {
		a.timer.Stop()
		a.timer = nil
	}
	if len(batch) == 0 {
		return
	}
	ids := make([]int32, 0, rows)
	for _, t := range batch {
		ids = append(ids, t.locals...)
	}
	payload := wire.EncodeIDList(ids)
	batch[0].wireReqs = 1
	batch[0].wireBytes = int64(len(payload))
	a.inFlight++
	a.flushes.Add(1)
	a.flushedRow.Add(int64(rows))
	metrics.FeatAggFlushes.Inc(1)
	metrics.FeatAggRows.Inc(int64(rows))
	if len(batch) > 1 {
		a.shared.Add(int64(len(batch)))
		metrics.FeatAggShared.Inc(int64(len(batch)))
	}
	span := a.opts.Tracer.StartSpan(batch[0].sc, "featagg:flush")
	sc := batch[0].sc
	if c := span.Context(); c.Valid() {
		sc = c
	}
	fut := a.tr.Call(sc, rpc.MethodFetchFeatures, payload)
	go a.complete(fut, span, batch, rows)
}

// complete resolves one flush: decode once, slice each ticket's row range,
// release every ticket.
func (a *FeatureAggregator) complete(fut Response, span obs.ActiveSpan, batch []*FeatTicket, rows int) {
	payload, err := fut.Wait()
	var feats []float32
	dim := 0
	aliased := false
	if err == nil {
		if a.opts.ZeroCopy {
			aliased = wire.CanAlias(payload)
			dim, feats, err = wire.DecodeFeatureResponseView(payload)
		} else {
			dim, feats, err = wire.DecodeFeatureResponse(payload)
		}
	}
	if err == nil && (dim <= 0 || len(feats) != rows*dim) {
		err = fmt.Errorf("agg: merged feature fetch returned %d floats at dim %d, want %d rows", len(feats), dim, rows)
	}
	var share *flushShare
	if err == nil && aliased {
		share = &flushShare{rel: fut.Release}
		share.refs.Store(int64(len(batch)))
	} else {
		fut.Release()
	}
	span.SetErr(err != nil)
	span.End()
	off := 0
	for _, t := range batch {
		if err == nil {
			t.feats = feats[off*dim : (off+len(t.locals))*dim]
			t.dim = dim
		}
		t.err, t.share = err, share
		off += len(t.locals)
		close(t.done)
	}
	a.mu.Lock()
	a.inFlight--
	a.mu.Unlock()
}

// Stats returns a snapshot of the aggregator's counters (the same shape as
// the neighbor-fetch aggregator's). A nil aggregator reports zeros.
func (a *FeatureAggregator) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	return Stats{
		Flushes: a.flushes.Load(),
		Rows:    a.flushedRow.Load(),
		Tickets: a.tickets.Load(),
		Shared:  a.shared.Load(),
	}
}
