// Package agg implements cross-query RPC fetch aggregation: a per-(machine,
// destination-shard) coalescing layer in front of the rpc client that merges
// the GetNeighborInfos requests of concurrent queries into one wire request.
//
// The paper's batching optimization (§3.2.3) merges all of ONE query's
// requests to a destination shard per iteration. Under a heavy concurrent
// query stream each query still pays its own request/response round trip per
// shard per iteration, so per-request overhead — framing, syscalls, handler
// dispatch, scheduling — dominates small fetches. Distributed GNN systems
// (DistDGL, SALIENT++) show server-side sampling throughput hinges on
// aggregating many clients' small fetches into few large transfers; this
// package generalizes the paper's batching ACROSS queries. It composes with
// the dynamic neighbor-row cache (internal/cache), which dedups IDENTICAL
// rows: the aggregator coalesces DISTINCT rows headed to the same shard.
//
// Mechanism: concurrent fetches enqueue their ID lists into a shared pending
// batch. A flush merges the batch into one MethodGetNeighborInfos request and
// demultiplexes the CSR response back to each waiter by row range. Flush
// triggers:
//
//   - idle: nothing in flight and nothing pending to this shard — flush
//     immediately, so a lone query pays zero added latency (the
//     zero-aggregation fast path);
//   - a configurable time window after the batch opened (Options.Window),
//     bounding the latency any fetch can absorb waiting for company;
//   - a row cap (Options.MaxRows), bounding request size.
//
// A batch opened behind an in-flight flush deliberately waits out its full
// window rather than flushing the moment the link frees up: the round trip
// it hides is exactly when other queries' fetches arrive, and draining early
// would ship one- and two-row batches that defeat the aggregation.
//
// Cancellation is per-waiter: a query abandoning its Wait detaches without
// poisoning the batch — the flush proceeds and resolves every other ticket.
// A flush-level failure (transport or remote error) propagates to all
// tickets of that flush.
package agg

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pprengine/internal/metrics"
	"pprengine/internal/obs"
	"pprengine/internal/rpc"
	"pprengine/internal/wire"
)

// DefaultWindow is the flush window applied when Options.Window is 0.
const DefaultWindow = 200 * time.Microsecond

// DefaultMaxRows is the row cap applied when Options.MaxRows is 0.
const DefaultMaxRows = 4096

// Options configures an Aggregator. The zero value gets DefaultWindow and
// DefaultMaxRows (enabling aggregation is the caller's decision — a nil
// *Aggregator is the "disabled" value).
type Options struct {
	// Window bounds how long an open batch waits for more fetches before
	// flushing. It only delays fetches that arrive while another flush is in
	// flight; an idle aggregator flushes immediately.
	Window time.Duration
	// MaxRows flushes the pending batch as soon as it reaches this many
	// requested rows, regardless of the window.
	MaxRows int
	// Tracer, when set, records one "agg:flush" span per flush, parented to
	// the trace context of the ticket that opened the flush (riders share the
	// flush, but only one query can own the span).
	Tracer *obs.Tracer
	// ZeroCopy decodes flush responses with wire.DecodeCSRView, so every
	// ticket's rows alias the pooled response payload instead of a heap copy.
	// The payload is held by a per-flush refcount (one count per ticket) and
	// returns to its pool when the last ticket calls Release. Off, responses
	// are copy-decoded and the payload is released as soon as the decode
	// finishes — the pre-view behavior.
	ZeroCopy bool
}

func (o Options) window() time.Duration {
	if o.Window <= 0 {
		return DefaultWindow
	}
	return o.Window
}

func (o Options) maxRows() int {
	if o.MaxRows <= 0 {
		return DefaultMaxRows
	}
	return o.MaxRows
}

// Ticket is one enqueued fetch's handle on its share of a flush: rows
// [Off, Off+len(locals)) of the merged CSR response.
type Ticket struct {
	locals []int32
	done   chan struct{}

	// Resolved by the flush completion, published by closing done.
	infos *wire.NeighborInfos
	off   int
	err   error

	// Wire accounting, attributed to the ticket that opened the flush (the
	// first in the batch): the flush's single request and its payload bytes.
	// Riders report zero, so per-query sums equal the true wire totals.
	wireReqs  int64
	wireBytes int64

	// sc is the enqueuer's trace context; the flush's span (and its wire
	// request) is attributed to the opener's trace.
	sc obs.SpanContext

	// share refcounts the flush's pooled response payload when the decode
	// aliased it (Options.ZeroCopy); nil when the rows were copied out.
	share    *flushShare
	released atomic.Bool
}

// flushShare is the refcount tying one flush's decoded view to its pooled
// response payload: every ticket of the flush holds one count, and the last
// Release returns the payload to its pool.
type flushShare struct {
	refs atomic.Int64
	rel  func()
}

func (s *flushShare) release() {
	if s == nil {
		return
	}
	if s.refs.Add(-1) == 0 {
		s.rel()
	}
}

// Rows returns the number of rows this ticket requested.
func (t *Ticket) Rows() int { return len(t.locals) }

// Done returns a channel closed when the ticket's flush has resolved (rows
// decoded or error set).
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the ticket resolves or ctx ends. On success it returns
// the decoded batch shared by every ticket of the flush plus the offset of
// this ticket's first row. Abandoning a Wait detaches only this waiter; the
// flush still resolves the other tickets and a late response is not lost.
func (t *Ticket) Wait(ctx context.Context) (infos *wire.NeighborInfos, off int, err error) {
	select {
	case <-t.done:
		return t.infos, t.off, t.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// Result returns the resolved batch, offset and error. It must only be
// called after Done() closed (e.g. from a cache.Flight resolve callback).
func (t *Ticket) Result() (infos *wire.NeighborInfos, off int, err error) {
	return t.infos, t.off, t.err
}

// Release returns this ticket's share of the flush's decoded response. With
// ZeroCopy the rows alias the pooled response payload, so the caller must
// not touch the batch returned by Wait/Result after Release; the last
// ticket's Release returns the payload to its pool. Release is idempotent,
// nil-safe, and a no-op before the ticket resolves (an abandoned ticket's
// payload falls back to the garbage collector — never released early).
func (t *Ticket) Release() {
	if t == nil {
		return
	}
	select {
	case <-t.done:
	default:
		return
	}
	if t.released.CompareAndSwap(false, true) {
		t.share.release()
	}
}

// Accounting returns the wire requests and request bytes attributed to this
// ticket (non-zero only for the ticket that opened its flush). Before the
// ticket resolves it reports zeros.
func (t *Ticket) Accounting() (requests, bytes int64) {
	select {
	case <-t.done:
		return t.wireReqs, t.wireBytes
	default:
		return 0, 0
	}
}

// Response is the pending result of one issued flush. *rpc.Future satisfies
// it; so does the failover layer's routed call future. Release hands the
// response's pooled payload buffer back once the flush is done with it (see
// the buffer-ownership rules in DESIGN.md §5h).
type Response interface {
	Wait() ([]byte, error)
	Release()
}

// Transport issues one wire request for a flush. The two implementations are
// a plain rpc client (clientTransport) and the replication layer's
// ReplicaRouter bound to this aggregator's destination shard — the
// aggregator itself stays transport-agnostic, so flush merging and failover
// compose without knowing about each other.
type Transport interface {
	// Call issues one wire request. sc is the trace context the request
	// should carry (zero when the flush's opener was not traced); it rides
	// the request frame, not a cancellation context — a flush is shared
	// machine state and must not die with any single query.
	Call(sc obs.SpanContext, m rpc.Method, payload []byte) Response
}

// clientTransport adapts a plain *rpc.Client to Transport.
type clientTransport struct{ c *rpc.Client }

func (t clientTransport) Call(sc obs.SpanContext, m rpc.Method, payload []byte) Response {
	return t.c.CallCtx(obs.ContextWith(context.Background(), sc), m, payload)
}

// Aggregator coalesces concurrent GetNeighborInfos fetches bound for one
// destination shard into merged wire requests over a single transport. It is
// shared machine-wide (like the shard and the dynamic cache): every compute
// process of a machine enqueues into the same pending batch. All methods are
// safe for concurrent use.
type Aggregator struct {
	tr   Transport
	opts Options

	mu       sync.Mutex
	pending  []*Ticket
	rows     int
	epoch    uint64 // mutation epoch of the pending batch (0 = static base)
	inFlight int
	timer    *time.Timer
	gen      uint64 // batch generation, invalidates stale timer fires

	flushes    atomic.Int64
	flushedRow atomic.Int64
	tickets    atomic.Int64
	shared     atomic.Int64
}

// New returns an aggregator flushing over c. A nil client yields a nil
// aggregator (the disabled value), so callers can build slices indexed by
// shard with a nil entry for the local shard.
func New(c *rpc.Client, opts Options) *Aggregator {
	if c == nil {
		return nil
	}
	return NewTransport(clientTransport{c}, opts)
}

// NewTransport returns an aggregator flushing over an arbitrary transport —
// the constructor the replication layer uses to route flushes through a
// ReplicaRouter. A nil transport yields a nil aggregator.
func NewTransport(tr Transport, opts Options) *Aggregator {
	if tr == nil {
		return nil
	}
	return &Aggregator{tr: tr, opts: opts}
}

// Enqueue adds a fetch for locals to the pending batch and returns its
// ticket. The flush carrying it is issued without any per-query context: a
// flush is shared machine state, and one query abandoning its wait must not
// kill a response other queries are waiting on (Ticket.Wait still honors the
// waiter's own ctx).
func (a *Aggregator) Enqueue(locals []int32) *Ticket {
	return a.EnqueueTraced(obs.SpanContext{}, locals)
}

// EnqueueTraced is Enqueue carrying the enqueuer's trace context: if this
// ticket ends up opening a flush, the flush's span and wire request join the
// enqueuer's trace.
func (a *Aggregator) EnqueueTraced(sc obs.SpanContext, locals []int32) *Ticket {
	return a.EnqueueTracedAt(sc, 0, locals)
}

// EnqueueTracedAt is EnqueueTraced pinned to a mutation epoch: only fetches
// pinned at the SAME epoch may share a flush (the merged response is decoded
// as one graph view, so mixing epochs would hand some ticket another epoch's
// rows). A pending batch at a different epoch is flushed immediately and a
// new batch opens at the enqueuer's epoch; under a steady epoch the batching
// behavior is identical to EnqueueTraced. Epoch 0 — the static base graph —
// flushes with the legacy request format; any other epoch ships an
// epoch-stamped ID list to the epoch-pinned server method.
func (a *Aggregator) EnqueueTracedAt(sc obs.SpanContext, epoch uint64, locals []int32) *Ticket {
	t := &Ticket{locals: locals, done: make(chan struct{}), sc: sc}
	if len(locals) == 0 {
		t.infos = &wire.NeighborInfos{Indptr: []int32{}}
		close(t.done)
		return t
	}
	a.tickets.Add(1)
	a.mu.Lock()
	if len(a.pending) > 0 && a.epoch != epoch {
		// Epoch boundary: the forming batch belongs to another graph view.
		// Ship it now rather than mixing views in one response.
		a.flushLocked()
	}
	opened := len(a.pending) == 0
	a.pending = append(a.pending, t)
	a.epoch = epoch
	a.rows += len(locals)
	switch {
	case a.inFlight == 0 && opened:
		// Idle: no flush in flight and no batch forming means no concurrent
		// fetch to wait for — flushing now keeps the single-query fast path
		// at zero added latency and zero aggregation.
		a.flushLocked()
	case a.rows >= a.opts.maxRows():
		a.flushLocked()
	case a.timer == nil:
		// Batch just opened behind an in-flight flush: bound its wait. The
		// batch holds until this timer (or the row cap) fires, even across
		// flush completions — see the package comment.
		gen := a.gen
		a.timer = time.AfterFunc(a.opts.window(), func() { a.timedFlush(gen) })
	}
	a.mu.Unlock()
	return t
}

// timedFlush fires when a batch's window expires. The generation guard makes
// a stale timer (its batch already flushed by the cap or a drain) a no-op.
func (a *Aggregator) timedFlush(gen uint64) {
	a.mu.Lock()
	if a.gen == gen && len(a.pending) > 0 {
		a.flushLocked()
	}
	a.mu.Unlock()
}

// flushLocked sends the pending batch as one wire request. Caller holds a.mu.
func (a *Aggregator) flushLocked() {
	batch := a.pending
	a.pending = nil
	rows := a.rows
	a.rows = 0
	a.gen++
	if a.timer != nil {
		a.timer.Stop()
		a.timer = nil
	}
	if len(batch) == 0 {
		return
	}
	ids := make([]int32, 0, rows)
	for _, t := range batch {
		ids = append(ids, t.locals...)
	}
	method := rpc.MethodGetNeighborInfos
	var payload []byte
	if epoch := a.epoch; epoch != 0 {
		method = rpc.MethodGetNeighborInfosAt
		payload = wire.EncodeIDListAt(epoch, ids)
	} else {
		payload = wire.EncodeIDList(ids)
	}
	batch[0].wireReqs = 1
	batch[0].wireBytes = int64(len(payload))
	a.inFlight++
	a.flushes.Add(1)
	a.flushedRow.Add(int64(rows))
	metrics.AggFlushes.Inc(1)
	metrics.AggRows.Inc(int64(rows))
	if len(batch) > 1 {
		a.shared.Add(int64(len(batch)))
		metrics.AggShared.Inc(int64(len(batch)))
	}
	// The flush span (and the request's trace context) belong to the opener's
	// trace; a span context derived from it keeps the rpc-server span a child
	// of "agg:flush" rather than a sibling.
	span := a.opts.Tracer.StartSpan(batch[0].sc, "agg:flush")
	sc := batch[0].sc
	if c := span.Context(); c.Valid() {
		sc = c
	}
	fut := a.tr.Call(sc, method, payload)
	go a.complete(fut, span, batch, rows)
}

// complete resolves one flush: decode, demux by row range, release every
// ticket. A batch pending behind this flush keeps accumulating until its own
// window or row cap fires.
func (a *Aggregator) complete(fut Response, span obs.ActiveSpan, batch []*Ticket, rows int) {
	payload, err := fut.Wait()
	var infos *wire.NeighborInfos
	aliased := false
	if err == nil {
		if a.opts.ZeroCopy {
			// One decode per flush, shared by every ticket. When the payload
			// is aliasable the views point straight into the pooled response
			// buffer; the tickets' refcount decides when it goes home.
			aliased = wire.CanAlias(payload)
			infos, err = wire.DecodeCSRView(payload, nil)
		} else {
			infos, err = wire.DecodeCSR(payload)
		}
	}
	if err == nil && infos.NumRows() != rows {
		err = fmt.Errorf("agg: merged fetch returned %d rows, want %d", infos.NumRows(), rows)
	}
	var share *flushShare
	if err == nil && aliased {
		share = &flushShare{rel: fut.Release}
		share.refs.Store(int64(len(batch)))
	} else {
		// Rows copied out (or the flush failed): the payload buffer can go
		// back to its pool right now.
		fut.Release()
	}
	span.SetErr(err != nil)
	span.End()
	off := 0
	for _, t := range batch {
		t.infos, t.off, t.err, t.share = infos, off, err, share
		off += len(t.locals)
		close(t.done)
	}
	a.mu.Lock()
	a.inFlight--
	a.mu.Unlock()
}

// Stats is a point-in-time snapshot of one aggregator's counters.
type Stats struct {
	// Flushes is the number of wire requests sent.
	Flushes int64
	// Rows is the total rows carried by those requests.
	Rows int64
	// Tickets is the number of fetches enqueued.
	Tickets int64
	// Shared counts tickets whose flush carried at least one other ticket —
	// the fetches that actually amortized a round trip.
	Shared int64
}

// Stats returns a snapshot. A nil aggregator reports zeros.
func (a *Aggregator) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	return Stats{
		Flushes: a.flushes.Load(),
		Rows:    a.flushedRow.Load(),
		Tickets: a.tickets.Load(),
		Shared:  a.shared.Load(),
	}
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Flushes += other.Flushes
	s.Rows += other.Rows
	s.Tickets += other.Tickets
	s.Shared += other.Shared
}
