package agg

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"pprengine/internal/rpc"
	"pprengine/internal/wire"
)

// synthInfos builds a deterministic per-ID neighbor row: vertex v has the
// two neighbors (v, v+1) on shard 0 with weight 1 and row degree 2.
func synthInfos(ids []int32) *wire.NeighborInfos {
	n := &wire.NeighborInfos{Indptr: []int32{0}}
	for _, v := range ids {
		n.Locals = append(n.Locals, v, v+1)
		n.Shards = append(n.Shards, 0, 0)
		n.Weights = append(n.Weights, 1, 1)
		n.WDegs = append(n.WDegs, 2, 2)
		n.Indptr = append(n.Indptr, int32(len(n.Locals)))
		n.RowWDeg = append(n.RowWDeg, 2)
	}
	return n
}

// testServer serves synthetic CSR responses; requests block on gate when it
// is non-nil (until the gate channel is closed), and any ID >= errID fails
// the whole request.
func testServer(t *testing.T, gate chan struct{}, errID int32) (*rpc.Server, *rpc.Client) {
	t.Helper()
	srv := rpc.NewServer()
	srv.Handle(rpc.MethodGetNeighborInfos, func(p []byte) ([]byte, error) {
		if gate != nil {
			<-gate
		}
		ids, err := wire.DecodeIDList(p)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			if errID > 0 && id >= errID {
				return nil, fmt.Errorf("synthetic failure for id %d", id)
			}
		}
		return wire.EncodeCSR(synthInfos(ids)), nil
	})
	addr, err := srv.ListenAndServe()
	if err != nil {
		t.Fatal(err)
	}
	c, err := rpc.Dial(addr, rpc.LatencyModel{})
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close(); srv.Close() })
	return srv, c
}

// checkRows verifies that ticket t resolved to its own IDs' synthetic rows.
func checkRows(t *testing.T, tk *Ticket, ids []int32) {
	t.Helper()
	infos, off, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	for i, id := range ids {
		locals, _, _, _ := infos.Row(off + i)
		if len(locals) != 2 || locals[0] != id || locals[1] != id+1 {
			t.Fatalf("row %d for id %d = %v, want [%d %d]", off+i, id, locals, id, id+1)
		}
		if infos.RowWDeg[off+i] != 2 {
			t.Fatalf("row %d wdeg = %v, want 2", off+i, infos.RowWDeg[off+i])
		}
	}
}

// TestImmediateFlushWhenIdle: with nothing in flight every fetch flushes on
// its own — the single-query fast path adds no latency and no batching.
func TestImmediateFlushWhenIdle(t *testing.T) {
	srv, c := testServer(t, nil, 0)
	a := New(c, Options{Window: time.Minute})
	for i := int32(0); i < 3; i++ {
		checkRows(t, a.Enqueue([]int32{i * 10}), []int32{i * 10})
	}
	if got := srv.Stats().Requests[rpc.MethodGetNeighborInfos]; got != 3 {
		t.Fatalf("server saw %d requests, want 3 (one per idle fetch)", got)
	}
	st := a.Stats()
	if st.Flushes != 3 || st.Shared != 0 || st.Tickets != 3 || st.Rows != 3 {
		t.Fatalf("stats = %+v, want 3 flushes, 0 shared, 3 tickets, 3 rows", st)
	}
}

// TestConcurrentFetchesCoalesce: fetches arriving while a flush is on the
// wire share the next flush — three queries, two wire requests.
func TestConcurrentFetchesCoalesce(t *testing.T) {
	gate := make(chan struct{})
	srv, c := testServer(t, gate, 0)
	a := New(c, Options{Window: 5 * time.Millisecond})
	t1 := a.Enqueue([]int32{1})    // idle -> immediate flush, blocks on gate
	t2 := a.Enqueue([]int32{2, 3}) // batch behind the in-flight flush
	t3 := a.Enqueue([]int32{4})    // joins the batch; flushed by its window
	close(gate)
	checkRows(t, t1, []int32{1})
	checkRows(t, t2, []int32{2, 3})
	checkRows(t, t3, []int32{4})
	if got := srv.Stats().Requests[rpc.MethodGetNeighborInfos]; got != 2 {
		t.Fatalf("server saw %d requests, want 2 (1 immediate + 1 merged)", got)
	}
	st := a.Stats()
	if st.Flushes != 2 || st.Shared != 2 || st.Tickets != 3 || st.Rows != 4 {
		t.Fatalf("stats = %+v, want 2 flushes, 2 shared, 3 tickets, 4 rows", st)
	}
	// The opener of each flush carries its wire accounting; riders are free.
	if r, _ := t1.Accounting(); r != 1 {
		t.Fatalf("t1 requests = %d, want 1", r)
	}
	if r, b := t2.Accounting(); r != 1 || b != int64(len(wire.EncodeIDList([]int32{2, 3, 4}))) {
		t.Fatalf("t2 accounting = (%d, %d), want the merged flush", r, b)
	}
	if r, b := t3.Accounting(); r != 0 || b != 0 {
		t.Fatalf("t3 accounting = (%d, %d), want (0, 0) for a rider", r, b)
	}
}

// TestRowCapFlush: reaching MaxRows flushes the pending batch even while
// another flush is in flight and long before the window expires.
func TestRowCapFlush(t *testing.T) {
	gate := make(chan struct{})
	srv, c := testServer(t, gate, 0)
	a := New(c, Options{Window: time.Minute, MaxRows: 2})
	t1 := a.Enqueue([]int32{1}) // immediate
	t2 := a.Enqueue([]int32{2})
	t3 := a.Enqueue([]int32{3}) // pending rows hit the cap -> second flush now
	if got := a.Stats().Flushes; got != 2 {
		t.Fatalf("flushes before gate release = %d, want 2 (cap-triggered)", got)
	}
	close(gate)
	checkRows(t, t1, []int32{1})
	checkRows(t, t2, []int32{2})
	checkRows(t, t3, []int32{3})
	if got := srv.Stats().Requests[rpc.MethodGetNeighborInfos]; got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
}

// TestWindowFlush: a batch opened behind an in-flight flush goes out after
// the window even if that flush never completes in time.
func TestWindowFlush(t *testing.T) {
	release := make(chan struct{}) // releases only the FIRST request
	first := true
	var mu sync.Mutex
	srv := rpc.NewServer()
	srv.Handle(rpc.MethodGetNeighborInfos, func(p []byte) ([]byte, error) {
		mu.Lock()
		mine := first
		first = false
		mu.Unlock()
		if mine {
			<-release
		}
		ids, err := wire.DecodeIDList(p)
		if err != nil {
			return nil, err
		}
		return wire.EncodeCSR(synthInfos(ids)), nil
	})
	addr, err := srv.ListenAndServe()
	if err != nil {
		t.Fatal(err)
	}
	c, err := rpc.Dial(addr, rpc.LatencyModel{})
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close(); srv.Close() })

	a := New(c, Options{Window: 2 * time.Millisecond})
	t1 := a.Enqueue([]int32{1}) // in flight, blocked on release
	t2 := a.Enqueue([]int32{2}) // opens a batch; window timer armed
	// t2's window expires while t1 is still stuck on the wire, so t2's flush
	// goes out on its own and resolves first.
	checkRows(t, t2, []int32{2})
	close(release)
	checkRows(t, t1, []int32{1})
	if got := srv.Stats().Requests[rpc.MethodGetNeighborInfos]; got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
}

// TestErrorPropagatesToAllWaiters: a failed flush fails every ticket it
// carried — and only those.
func TestErrorPropagatesToAllWaiters(t *testing.T) {
	gate := make(chan struct{})
	_, c := testServer(t, gate, 1000)
	a := New(c, Options{Window: 5 * time.Millisecond})
	ok := a.Enqueue([]int32{1})      // first flush: succeeds
	bad1 := a.Enqueue([]int32{1000}) // merged second flush: handler fails it
	bad2 := a.Enqueue([]int32{5})    // innocent rider on the failed flush
	close(gate)
	checkRows(t, ok, []int32{1})
	if _, _, err := bad1.Wait(context.Background()); err == nil {
		t.Fatal("bad1 resolved without error")
	}
	if _, _, err := bad2.Wait(context.Background()); err == nil {
		t.Fatal("bad2 must inherit its flush's error")
	}
}

// TestCancelledWaiterDetaches: a waiter abandoning its Wait does not poison
// the flush — the other participant still gets its rows, and the abandoned
// ticket itself still resolves for anyone holding it.
func TestCancelledWaiterDetaches(t *testing.T) {
	gate := make(chan struct{})
	_, c := testServer(t, gate, 0)
	a := New(c, Options{Window: 5 * time.Millisecond})
	t1 := a.Enqueue([]int32{1})
	t2 := a.Enqueue([]int32{2})
	t3 := a.Enqueue([]int32{3})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := t2.Wait(ctx); err != context.Canceled {
		t.Fatalf("cancelled Wait = %v, want context.Canceled", err)
	}
	close(gate)
	checkRows(t, t1, []int32{1})
	checkRows(t, t3, []int32{3})
	checkRows(t, t2, []int32{2}) // the flush resolved it regardless
}

// TestEmptyEnqueue: a zero-row fetch resolves immediately without traffic.
func TestEmptyEnqueue(t *testing.T) {
	srv, c := testServer(t, nil, 0)
	a := New(c, Options{})
	tk := a.Enqueue(nil)
	infos, off, err := tk.Wait(context.Background())
	if err != nil || off != 0 || infos.NumRows() != 0 {
		t.Fatalf("empty enqueue = (%v, %d, %v), want empty batch", infos, off, err)
	}
	if got := srv.Stats().Requests[rpc.MethodGetNeighborInfos]; got != 0 {
		t.Fatalf("server saw %d requests, want 0", got)
	}
}

// TestConcurrentHammer drives many goroutines through one aggregator under
// the race detector and checks every ticket resolves to its own rows.
func TestConcurrentHammer(t *testing.T) {
	_, c := testServer(t, nil, 0)
	a := New(c, Options{Window: 100 * time.Microsecond})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ids := []int32{int32(w*1000 + i), int32(w*1000 + i + 500)}
				tk := a.Enqueue(ids)
				infos, off, err := tk.Wait(context.Background())
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				for k, id := range ids {
					locals, _, _, _ := infos.Row(off + k)
					if locals[0] != id {
						t.Errorf("worker %d: row %d = %d, want %d", w, off+k, locals[0], id)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := a.Stats()
	if st.Tickets != 16*50 {
		t.Fatalf("tickets = %d, want %d", st.Tickets, 16*50)
	}
	if st.Rows != 16*50*2 {
		t.Fatalf("rows = %d, want %d", st.Rows, 16*50*2)
	}
}
