// Package tensor is a small dense-vector library that stands in for the
// PyTorch tensor operations used by the paper's baseline implementations
// ("PyTorch Tensor" Forward Push and "DGL SpMM" power iteration).
//
// Only the operations those baselines need are provided: elementwise
// arithmetic, gather/scatter, masked selection, nonzero scans, sorting and
// top-k, and CSR sparse-matrix/dense-vector products. The deliberate cost
// profile matters more than the API surface: like its tensor-library
// counterpart, every frontier scan here is O(len(vector)) — this is exactly
// the inefficiency the paper's hashmap-based engine removes.
package tensor

import (
	"fmt"
	"math"
	"sort"
)

// Vec is a dense float64 vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Fill sets every element to v.
func (x Vec) Fill(v float64) {
	for i := range x {
		x[i] = v
	}
}

// Clone returns a copy of x.
func (x Vec) Clone() Vec {
	y := make(Vec, len(x))
	copy(y, x)
	return y
}

// AXPY computes x += a*y elementwise. Panics if lengths differ.
func (x Vec) AXPY(a float64, y Vec) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: AXPY length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range x {
		x[i] += a * y[i]
	}
}

// Scale multiplies every element by a.
func (x Vec) Scale(a float64) {
	for i := range x {
		x[i] *= a
	}
}

// Sum returns the sum of elements.
func (x Vec) Sum() float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// L1Diff returns sum |x_i - y_i|.
func (x Vec) L1Diff(y Vec) float64 {
	if len(x) != len(y) {
		panic("tensor: L1Diff length mismatch")
	}
	s := 0.0
	for i := range x {
		s += math.Abs(x[i] - y[i])
	}
	return s
}

// Gather returns x[idx[0]], x[idx[1]], ... in a new vector.
func (x Vec) Gather(idx []int32) Vec {
	out := make(Vec, len(idx))
	for i, j := range idx {
		out[i] = x[j]
	}
	return out
}

// ScatterAdd performs x[idx[i]] += src[i] for all i. Duplicate indices
// accumulate (like torch.scatter_add).
func (x Vec) ScatterAdd(idx []int32, src Vec) {
	if len(idx) != len(src) {
		panic("tensor: ScatterAdd length mismatch")
	}
	for i, j := range idx {
		x[j] += src[i]
	}
}

// IndexFill sets x[idx[i]] = v for all i.
func (x Vec) IndexFill(idx []int32, v float64) {
	for _, j := range idx {
		x[j] = v
	}
}

// NonzeroGreater returns the indices i where x[i] > thresh[i]*scale, scanning
// the entire vector — the O(|V|) frontier detection of the tensor baseline.
func NonzeroGreater(x, thresh Vec, scale float64) []int32 {
	if len(x) != len(thresh) {
		panic("tensor: NonzeroGreater length mismatch")
	}
	var out []int32
	for i := range x {
		if x[i] > thresh[i]*scale {
			out = append(out, int32(i))
		}
	}
	return out
}

// MaskedSelectI32 returns the elements of v whose mask entry is true.
func MaskedSelectI32(v []int32, mask []bool) []int32 {
	if len(v) != len(mask) {
		panic("tensor: MaskedSelect length mismatch")
	}
	var out []int32
	for i, m := range mask {
		if m {
			out = append(out, v[i])
		}
	}
	return out
}

// EqMaskI32 returns mask[i] = (v[i] == target), a full scan like tensor ==.
func EqMaskI32(v []int32, target int32) []bool {
	mask := make([]bool, len(v))
	for i, x := range v {
		mask[i] = x == target
	}
	return mask
}

// TopK returns the indices of the k largest elements of x in descending
// value order. Ties break toward the lower index. k is clamped to len(x).
func TopK(x Vec, k int) []int32 {
	if k > len(x) {
		k = len(x)
	}
	idx := make([]int32, len(x))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		if x[idx[a]] != x[idx[b]] {
			return x[idx[a]] > x[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// ArgsortDescending returns the permutation that sorts x descending.
func ArgsortDescending(x Vec) []int32 {
	return TopK(x, len(x))
}

// CSR is a float64 sparse matrix in compressed sparse row form, used by the
// power-iteration baseline (the "DGL SpMM" competitor).
type CSR struct {
	Rows, Cols int
	Indptr     []int64
	ColIdx     []int32
	Values     []float64
}

// SpMV computes y = A * x for dense x. Panics on dimension mismatch.
func (a *CSR) SpMV(x Vec) Vec {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("tensor: SpMV dim mismatch: %d cols vs %d vec", a.Cols, len(x)))
	}
	y := make(Vec, a.Rows)
	for r := 0; r < a.Rows; r++ {
		s := 0.0
		for i := a.Indptr[r]; i < a.Indptr[r+1]; i++ {
			s += a.Values[i] * x[a.ColIdx[i]]
		}
		y[r] = s
	}
	return y
}

// SpMVInto computes y = A*x reusing y's storage.
func (a *CSR) SpMVInto(y, x Vec) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic("tensor: SpMVInto dim mismatch")
	}
	for r := 0; r < a.Rows; r++ {
		s := 0.0
		for i := a.Indptr[r]; i < a.Indptr[r+1]; i++ {
			s += a.Values[i] * x[a.ColIdx[i]]
		}
		y[r] = s
	}
}

// Transpose returns Aᵀ in CSR form.
func (a *CSR) Transpose() *CSR {
	t := &CSR{Rows: a.Cols, Cols: a.Rows}
	t.Indptr = make([]int64, a.Cols+1)
	for _, c := range a.ColIdx {
		t.Indptr[c+1]++
	}
	for i := 0; i < a.Cols; i++ {
		t.Indptr[i+1] += t.Indptr[i]
	}
	nnz := t.Indptr[a.Cols]
	t.ColIdx = make([]int32, nnz)
	t.Values = make([]float64, nnz)
	cursor := make([]int64, a.Cols)
	copy(cursor, t.Indptr[:a.Cols])
	for r := 0; r < a.Rows; r++ {
		for i := a.Indptr[r]; i < a.Indptr[r+1]; i++ {
			c := a.ColIdx[i]
			j := cursor[c]
			cursor[c]++
			t.ColIdx[j] = int32(r)
			t.Values[j] = a.Values[i]
		}
	}
	return t
}
