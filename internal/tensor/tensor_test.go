package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	x := NewVec(4)
	x.Fill(2)
	y := Vec{1, 2, 3, 4}
	x.AXPY(0.5, y)
	want := Vec{2.5, 3, 3.5, 4}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("AXPY[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	x.Scale(2)
	if x.Sum() != 26 {
		t.Fatalf("Sum = %v, want 26", x.Sum())
	}
	c := x.Clone()
	c[0] = 99
	if x[0] == 99 {
		t.Fatal("Clone aliases original")
	}
}

func TestAXPYPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Vec{1}.AXPY(1, Vec{1, 2})
}

func TestL1Diff(t *testing.T) {
	if d := (Vec{1, 2}).L1Diff(Vec{2, 0}); d != 3 {
		t.Fatalf("L1Diff = %v, want 3", d)
	}
}

func TestGatherScatter(t *testing.T) {
	x := Vec{10, 20, 30, 40}
	g := x.Gather([]int32{3, 0, 0})
	if g[0] != 40 || g[1] != 10 || g[2] != 10 {
		t.Fatalf("Gather = %v", g)
	}
	y := NewVec(4)
	y.ScatterAdd([]int32{1, 1, 2}, Vec{5, 7, 1})
	if y[1] != 12 || y[2] != 1 || y[0] != 0 {
		t.Fatalf("ScatterAdd = %v", y)
	}
	y.IndexFill([]int32{1, 2}, 0)
	if y.Sum() != 0 {
		t.Fatalf("IndexFill result = %v", y)
	}
}

func TestNonzeroGreater(t *testing.T) {
	x := Vec{0.5, 0.1, 0.9, 0}
	th := Vec{1, 1, 1, 1}
	got := NonzeroGreater(x, th, 0.4)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("NonzeroGreater = %v", got)
	}
	if out := NonzeroGreater(x, th, 10); out != nil {
		t.Fatalf("expected nil, got %v", out)
	}
}

func TestMaskOps(t *testing.T) {
	v := []int32{10, 20, 30, 20}
	mask := EqMaskI32(v, 20)
	sel := MaskedSelectI32(v, mask)
	if len(sel) != 2 || sel[0] != 20 || sel[1] != 20 {
		t.Fatalf("MaskedSelect = %v", sel)
	}
}

func TestTopK(t *testing.T) {
	x := Vec{0.1, 0.9, 0.5, 0.9, 0.2}
	top := TopK(x, 3)
	// 0.9 appears at 1 and 3; ties break to lower index.
	if top[0] != 1 || top[1] != 3 || top[2] != 2 {
		t.Fatalf("TopK = %v", top)
	}
	if len(TopK(x, 100)) != len(x) {
		t.Fatal("TopK should clamp k")
	}
	full := ArgsortDescending(x)
	if len(full) != 5 || full[4] != 0 {
		t.Fatalf("ArgsortDescending = %v", full)
	}
}

func buildTestCSR() *CSR {
	// 3x3: [[1,0,2],[0,3,0],[4,0,5]]
	return &CSR{
		Rows: 3, Cols: 3,
		Indptr: []int64{0, 2, 3, 5},
		ColIdx: []int32{0, 2, 1, 0, 2},
		Values: []float64{1, 2, 3, 4, 5},
	}
}

func TestSpMV(t *testing.T) {
	a := buildTestCSR()
	y := a.SpMV(Vec{1, 1, 1})
	want := Vec{3, 3, 9}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("SpMV[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	y2 := NewVec(3)
	a.SpMVInto(y2, Vec{1, 0, 2})
	want2 := Vec{5, 0, 14}
	for i := range want2 {
		if y2[i] != want2[i] {
			t.Fatalf("SpMVInto[%d] = %v", i, y2[i])
		}
	}
}

func TestTranspose(t *testing.T) {
	a := buildTestCSR()
	at := a.Transpose()
	// Aᵀ = [[1,0,4],[0,3,0],[2,0,5]]
	y := at.SpMV(Vec{1, 1, 1})
	want := Vec{5, 3, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Transpose SpMV[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	// Double transpose restores dimensions and values.
	att := at.Transpose()
	if att.Rows != a.Rows || att.Cols != a.Cols || len(att.Values) != len(a.Values) {
		t.Fatal("double transpose shape mismatch")
	}
}

// Property: (Aᵀ)x·y == x·(Ay) for random matrices (adjointness).
func TestQuickTransposeAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		m := rng.Intn(20) + 2
		nnz := rng.Intn(80)
		a := &CSR{Rows: n, Cols: m, Indptr: make([]int64, n+1)}
		type entry struct {
			r, c int32
			v    float64
		}
		entries := make([]entry, nnz)
		for i := range entries {
			entries[i] = entry{int32(rng.Intn(n)), int32(rng.Intn(m)), rng.Float64()}
		}
		for _, e := range entries {
			a.Indptr[e.r+1]++
		}
		for i := 0; i < n; i++ {
			a.Indptr[i+1] += a.Indptr[i]
		}
		a.ColIdx = make([]int32, nnz)
		a.Values = make([]float64, nnz)
		cursor := make([]int64, n)
		copy(cursor, a.Indptr[:n])
		for _, e := range entries {
			a.ColIdx[cursor[e.r]] = e.c
			a.Values[cursor[e.r]] = e.v
			cursor[e.r]++
		}
		x := make(Vec, m)
		y := make(Vec, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		ax := a.SpMV(x)
		aty := a.Transpose().SpMV(y)
		lhs, rhs := 0.0, 0.0
		for i := range y {
			lhs += ax[i] * y[i]
		}
		for i := range x {
			rhs += aty[i] * x[i]
		}
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ScatterAdd then Gather recovers accumulated sums.
func TestQuickScatterGather(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 1
		k := rng.Intn(100)
		idx := make([]int32, k)
		src := make(Vec, k)
		for i := range idx {
			idx[i] = int32(rng.Intn(n))
			src[i] = rng.Float64()
		}
		x := NewVec(n)
		x.ScatterAdd(idx, src)
		ref := make(map[int32]float64)
		for i, j := range idx {
			ref[j] += src[i]
		}
		for j, v := range ref {
			if math.Abs(x[j]-v) > 1e-9 {
				return false
			}
		}
		return math.Abs(x.Sum()-src.Sum()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
