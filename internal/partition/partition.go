// Package partition implements min-cut graph partitioning used to place the
// graph across machines (paper §3.2.1, which uses METIS). The main entry
// point is Partition, a multilevel k-way partitioner in the METIS style:
//
//  1. Coarsen the graph by repeated heavy-edge matching until it is small.
//  2. Compute an initial balanced k-way partition of the coarsest graph by
//     greedy region growing.
//  3. Uncoarsen, projecting the partition back level by level, refining at
//     each level with boundary Fiduccia–Mattheyses (FM) passes that move
//     vertices to reduce edge cut subject to a balance constraint.
//
// Hash and LDG (linear deterministic greedy) streaming partitioners are
// provided as low-quality baselines for the partition-quality ablation.
package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"pprengine/internal/graph"
)

// Assignment maps every node to its partition (shard) in [0, K).
type Assignment []int32

// NumParts returns K (max label + 1); 0 for an empty assignment.
func (a Assignment) NumParts() int {
	maxP := int32(-1)
	for _, p := range a {
		if p > maxP {
			maxP = p
		}
	}
	return int(maxP + 1)
}

// Options configures Partition.
type Options struct {
	// Imbalance is the allowed load factor above perfect balance, e.g. 0.05
	// allows partitions up to 1.05 * n/k nodes. Defaults to 0.05.
	Imbalance float64
	// CoarsenTo stops coarsening when the graph has at most this many
	// nodes (default: max(30*k, 256)).
	CoarsenTo int
	// RefinePasses is the number of FM sweeps per uncoarsening level
	// (default 4).
	RefinePasses int
	// Seed controls tie-breaking randomness.
	Seed int64
}

func (o *Options) setDefaults(k int) {
	if o.Imbalance <= 0 {
		o.Imbalance = 0.05
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 30 * k
		if o.CoarsenTo < 256 {
			o.CoarsenTo = 256
		}
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 4
	}
}

// Partition computes a balanced k-way min-edge-cut partition of g.
// The graph should be undirected (symmetric) for the cut metric to be
// meaningful; directed graphs are handled by symmetrizing internally.
func Partition(g *graph.Graph, k int, opts Options) (Assignment, error) {
	if k <= 0 {
		return nil, fmt.Errorf("partition: k must be positive, got %d", k)
	}
	if g.NumNodes == 0 {
		return Assignment{}, nil
	}
	if k == 1 {
		return make(Assignment, g.NumNodes), nil
	}
	if k > g.NumNodes {
		return nil, fmt.Errorf("partition: k=%d exceeds number of nodes %d", k, g.NumNodes)
	}
	opts.setDefaults(k)
	rng := rand.New(rand.NewSource(opts.Seed))

	w := newWorking(g)
	// Coarsening phase.
	var levels []*coarseLevel
	for w.n > opts.CoarsenTo {
		lvl, next := coarsen(w, rng)
		if next.n >= w.n*95/100 {
			// Matching is no longer shrinking the graph (e.g. star
			// graphs); stop coarsening.
			break
		}
		levels = append(levels, lvl)
		w = next
	}
	// Initial partition of the coarsest graph.
	part := initialPartition(w, k, opts.Imbalance, rng)
	refine(w, part, k, opts, rng)
	// Uncoarsening with refinement.
	for i := len(levels) - 1; i >= 0; i-- {
		lvl := levels[i]
		finePart := make([]int32, lvl.fineN)
		for v := 0; v < lvl.fineN; v++ {
			finePart[v] = part[lvl.coarseOf[v]]
		}
		part = finePart
		w = lvl.fine
		refine(w, part, k, opts, rng)
	}
	fillEmptyParts(part, k)
	return part, nil
}

// fillEmptyParts guarantees every part owns at least one node (a shard with
// zero core nodes cannot serve anything): empty parts steal single nodes
// from the currently largest part.
func fillEmptyParts(part []int32, k int) {
	sizes := make([]int, k)
	for _, p := range part {
		sizes[p]++
	}
	for p := 0; p < k; p++ {
		if sizes[p] > 0 {
			continue
		}
		// Take one node from the largest part.
		largest := 0
		for q := 1; q < k; q++ {
			if sizes[q] > sizes[largest] {
				largest = q
			}
		}
		if sizes[largest] <= 1 {
			continue // nothing to steal without emptying another part
		}
		for v := range part {
			if part[v] == int32(largest) {
				part[v] = int32(p)
				sizes[largest]--
				sizes[p]++
				break
			}
		}
	}
}

// working is a weighted graph used during coarsening: node weights count the
// collapsed original vertices; edge weights count collapsed original edges.
type working struct {
	n      int
	indptr []int64
	adj    []int32
	ewt    []float64
	nwt    []int64 // node weight = number of original vertices inside
}

func newWorking(g *graph.Graph) *working {
	// Symmetrize (cheaply: add both directions, dedup via sort) so matching
	// and cut computation see an undirected structure.
	type he struct {
		u, v int32
		w    float64
	}
	edges := make([]he, 0, g.NumEdges()*2)
	for v := graph.NodeID(0); int(v) < g.NumNodes; v++ {
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if u == v {
				continue
			}
			edges = append(edges, he{v, u, float64(ws[i])}, he{u, v, float64(ws[i])})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	w := &working{n: g.NumNodes}
	w.indptr = make([]int64, g.NumNodes+1)
	w.nwt = make([]int64, g.NumNodes)
	for i := range w.nwt {
		w.nwt[i] = 1
	}
	for i := 0; i < len(edges); {
		j := i
		acc := 0.0
		for j < len(edges) && edges[j].u == edges[i].u && edges[j].v == edges[i].v {
			acc += edges[j].w
			j++
		}
		w.adj = append(w.adj, edges[i].v)
		w.ewt = append(w.ewt, acc)
		w.indptr[edges[i].u+1]++
		i = j
	}
	for v := 0; v < g.NumNodes; v++ {
		w.indptr[v+1] += w.indptr[v]
	}
	return w
}

type coarseLevel struct {
	fine     *working
	fineN    int
	coarseOf []int32 // fine node -> coarse node
}

// coarsen performs one level of heavy-edge matching and contraction.
func coarsen(w *working, rng *rand.Rand) (*coarseLevel, *working) {
	match := make([]int32, w.n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(w.n)
	// Heavy-edge matching: visit nodes in random order, match each
	// unmatched node with its heaviest unmatched neighbor.
	for _, vi := range order {
		v := int32(vi)
		if match[v] != -1 {
			continue
		}
		best := int32(-1)
		bestW := -1.0
		for i := w.indptr[v]; i < w.indptr[v+1]; i++ {
			u := w.adj[i]
			if match[u] != -1 || u == v {
				continue
			}
			if w.ewt[i] > bestW {
				bestW = w.ewt[i]
				best = u
			}
		}
		if best != -1 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v // self-match
		}
	}
	// Number coarse nodes.
	coarseOf := make([]int32, w.n)
	for i := range coarseOf {
		coarseOf[i] = -1
	}
	cn := int32(0)
	for v := int32(0); int(v) < w.n; v++ {
		if coarseOf[v] != -1 {
			continue
		}
		coarseOf[v] = cn
		m := match[v]
		if m != v && m >= 0 {
			coarseOf[m] = cn
		}
		cn++
	}
	// Build the contracted graph.
	next := &working{n: int(cn)}
	next.nwt = make([]int64, cn)
	for v := int32(0); int(v) < w.n; v++ {
		next.nwt[coarseOf[v]] += w.nwt[v]
	}
	type he struct {
		u, v int32
		w    float64
	}
	edges := make([]he, 0, len(w.adj))
	for v := int32(0); int(v) < w.n; v++ {
		cv := coarseOf[v]
		for i := w.indptr[v]; i < w.indptr[v+1]; i++ {
			cu := coarseOf[w.adj[i]]
			if cu == cv {
				continue
			}
			edges = append(edges, he{cv, cu, w.ewt[i]})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	next.indptr = make([]int64, cn+1)
	for i := 0; i < len(edges); {
		j := i
		acc := 0.0
		for j < len(edges) && edges[j].u == edges[i].u && edges[j].v == edges[i].v {
			acc += edges[j].w
			j++
		}
		next.adj = append(next.adj, edges[i].v)
		next.ewt = append(next.ewt, acc)
		next.indptr[edges[i].u+1]++
		i = j
	}
	for v := int32(0); v < cn; v++ {
		next.indptr[v+1] += next.indptr[v]
	}
	return &coarseLevel{fine: w, fineN: w.n, coarseOf: coarseOf}, next
}

// initialPartition grows k regions greedily by BFS from random seeds on the
// coarsest graph, bounded by the balance target, then assigns leftovers to
// the lightest part.
func initialPartition(w *working, k int, imbalance float64, rng *rand.Rand) []int32 {
	part := make([]int32, w.n)
	for i := range part {
		part[i] = -1
	}
	var totalW int64
	for _, nw := range w.nwt {
		totalW += nw
	}
	target := float64(totalW) / float64(k)
	maxLoad := int64(target * (1 + imbalance))
	if maxLoad < 1 {
		maxLoad = 1
	}
	load := make([]int64, k)
	order := rng.Perm(w.n)
	oi := 0
	nextSeed := func() int32 {
		for oi < len(order) {
			v := int32(order[oi])
			oi++
			if part[v] == -1 {
				return v
			}
		}
		return -1
	}
	queue := make([]int32, 0, w.n)
	for p := 0; p < k-1; p++ { // last part takes the remainder
		// Keep growing part p — re-seeding across connected components —
		// until it reaches its target weight or nodes run out.
		for float64(load[p]) < target {
			seed := nextSeed()
			if seed == -1 {
				break
			}
			queue = queue[:0]
			queue = append(queue, seed)
			part[seed] = int32(p)
			load[p] += w.nwt[seed]
			for len(queue) > 0 && float64(load[p]) < target {
				v := queue[0]
				queue = queue[1:]
				for i := w.indptr[v]; i < w.indptr[v+1]; i++ {
					u := w.adj[i]
					// Cap growth close to the target so heavy coarse
					// hubs do not blow one part past its share.
					if part[u] != -1 || float64(load[p]+w.nwt[u]) > target*1.1 {
						continue
					}
					part[u] = int32(p)
					load[p] += w.nwt[u]
					queue = append(queue, u)
					if float64(load[p]) >= target {
						break
					}
				}
			}
		}
	}
	// Everything still unassigned belongs to the last part by default; the
	// lightest-part fallback below also mops up nodes skipped by maxLoad.
	for v := int32(0); int(v) < w.n; v++ {
		if part[v] == -1 && load[k-1]+w.nwt[v] <= maxLoad {
			part[v] = int32(k - 1)
			load[k-1] += w.nwt[v]
		}
	}
	// Any unassigned nodes go to the currently lightest part.
	for v := int32(0); int(v) < w.n; v++ {
		if part[v] != -1 {
			continue
		}
		best := 0
		for p := 1; p < k; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		part[v] = int32(best)
		load[best] += w.nwt[v]
	}
	return part
}

// refine runs boundary FM passes: repeatedly move the boundary vertex with
// the highest positive gain (cut reduction) to a neighboring part, subject
// to the balance constraint. Each pass visits boundary vertices in random
// order and applies greedy positive-gain moves; passes stop early when a
// sweep makes no move.
func refine(w *working, part []int32, k int, opts Options, rng *rand.Rand) {
	var totalW int64
	for _, nw := range w.nwt {
		totalW += nw
	}
	// Allow one extra node of slack on top of the imbalance bound: at
	// coarse levels node weights are large relative to the slack and a
	// strict bound freezes refinement entirely; finer levels re-balance
	// with smaller weights.
	var maxNodeW int64
	for _, nw := range w.nwt {
		if nw > maxNodeW {
			maxNodeW = nw
		}
	}
	maxLoad := int64(float64(totalW)/float64(k)*(1+opts.Imbalance)) + maxNodeW
	if maxLoad < 1 {
		maxLoad = 1
	}
	load := make([]int64, k)
	for v := 0; v < w.n; v++ {
		load[part[v]] += w.nwt[v]
	}
	conn := make([]float64, k) // scratch: weight to each part from v
	for pass := 0; pass < opts.RefinePasses; pass++ {
		moved := 0
		order := rng.Perm(w.n)
		for _, vi := range order {
			v := int32(vi)
			home := part[v]
			// Compute connectivity of v to each part.
			for p := range conn {
				conn[p] = 0
			}
			boundary := false
			for i := w.indptr[v]; i < w.indptr[v+1]; i++ {
				p := part[w.adj[i]]
				conn[p] += w.ewt[i]
				if p != home {
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			bestP := home
			bestGain := 0.0
			for p := 0; p < k; p++ {
				if int32(p) == home {
					continue
				}
				if load[p]+w.nwt[v] > maxLoad {
					continue
				}
				gain := conn[p] - conn[home]
				if gain > bestGain {
					bestGain = gain
					bestP = int32(p)
				}
			}
			if bestP != home {
				part[v] = bestP
				load[home] -= w.nwt[v]
				load[bestP] += w.nwt[v]
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	rebalance(w, part, k, load, maxLoad, conn)
}

// rebalance empties overloaded parts down to maxLoad by moving their
// boundary nodes (preferring moves that damage the cut least) into the
// lightest parts. Refinement sweeps only take positive-gain moves, so
// without this pass an unbalanced initial partition would stay unbalanced.
func rebalance(w *working, part []int32, k int, load []int64, maxLoad int64, conn []float64) {
	avg := int64(0)
	for _, l := range load {
		avg += l
	}
	avg /= int64(k)
	for p := 0; p < k; p++ {
		guard := 0
		for load[p] > maxLoad && guard < w.n {
			guard++
			// Pick the node in part p whose move away loses the least.
			bestV := int32(-1)
			bestLoss := 0.0
			bestDst := int32(-1)
			for v := int32(0); int(v) < w.n; v++ {
				if part[v] != int32(p) {
					continue
				}
				for q := range conn {
					conn[q] = 0
				}
				for i := w.indptr[v]; i < w.indptr[v+1]; i++ {
					conn[part[w.adj[i]]] += w.ewt[i]
				}
				// Candidate destination: the lightest part with the best
				// connectivity trade-off.
				for q := 0; q < k; q++ {
					if q == p || load[q] >= avg {
						continue
					}
					loss := conn[p] - conn[q]
					if bestV == -1 || loss < bestLoss {
						bestV, bestLoss, bestDst = v, loss, int32(q)
					}
				}
			}
			if bestV == -1 {
				break
			}
			part[bestV] = bestDst
			load[p] -= w.nwt[bestV]
			load[bestDst] += w.nwt[bestV]
		}
	}
}

// HashPartition assigns node v to v % k — the no-locality baseline.
func HashPartition(n, k int) Assignment {
	a := make(Assignment, n)
	for v := range a {
		a[v] = int32(v % k)
	}
	return a
}

// LDGPartition is the linear deterministic greedy streaming partitioner:
// nodes arrive in order and are placed in the part with the most already-
// placed neighbors, discounted by a load penalty.
func LDGPartition(g *graph.Graph, k int, imbalance float64) Assignment {
	if imbalance <= 0 {
		imbalance = 0.05
	}
	cap_ := float64(g.NumNodes)/float64(k)*(1+imbalance) + 1
	part := make(Assignment, g.NumNodes)
	for i := range part {
		part[i] = -1
	}
	load := make([]float64, k)
	score := make([]float64, k)
	for v := graph.NodeID(0); int(v) < g.NumNodes; v++ {
		for p := range score {
			score[p] = 0
		}
		for _, u := range g.Neighbors(v) {
			if p := part[u]; p >= 0 {
				score[p]++
			}
		}
		best, bestScore := 0, -1.0
		for p := 0; p < k; p++ {
			s := score[p] * (1 - load[p]/cap_)
			// Ties (notably score 0 for nodes with no placed neighbors)
			// break toward the lightest part so no part starves.
			if s > bestScore || (s == bestScore && load[p] < load[best]) {
				bestScore = s
				best = p
			}
		}
		part[v] = int32(best)
		load[best]++
	}
	return part
}

// Quality summarizes a partition: EdgeCut counts directed edges whose
// endpoints live in different parts; Balance is maxPartSize / (n/k).
type Quality struct {
	EdgeCut    int64
	CutRatio   float64
	Balance    float64
	PartSizes  []int
	RemoteFrac float64 // = CutRatio; fraction of edges crossing shards
}

// Evaluate computes partition quality for assignment a over graph g.
func Evaluate(g *graph.Graph, a Assignment) Quality {
	k := a.NumParts()
	q := Quality{PartSizes: make([]int, k)}
	for v := graph.NodeID(0); int(v) < g.NumNodes; v++ {
		q.PartSizes[a[v]]++
		for _, u := range g.Neighbors(v) {
			if a[u] != a[v] {
				q.EdgeCut++
			}
		}
	}
	m := g.NumEdges()
	if m > 0 {
		q.CutRatio = float64(q.EdgeCut) / float64(m)
	}
	q.RemoteFrac = q.CutRatio
	if k > 0 && g.NumNodes > 0 {
		maxSize := 0
		for _, s := range q.PartSizes {
			if s > maxSize {
				maxSize = s
			}
		}
		q.Balance = float64(maxSize) / (float64(g.NumNodes) / float64(k))
	}
	return q
}
