package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pprengine/internal/graph"
)

func testGraph(seed int64) *graph.Graph {
	g := graph.RMAT(graph.RMATConfig{
		NumNodes: 2000, NumEdges: 12000, A: 0.55, B: 0.2, C: 0.15, Seed: seed,
	})
	return graph.MakeUndirected(g)
}

func TestPartitionValidAssignment(t *testing.T) {
	g := testGraph(1)
	for _, k := range []int{2, 4, 8} {
		a, err := Partition(g, k, Options{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != g.NumNodes {
			t.Fatalf("k=%d: assignment length %d != %d", k, len(a), g.NumNodes)
		}
		for v, p := range a {
			if p < 0 || int(p) >= k {
				t.Fatalf("k=%d: node %d assigned to invalid part %d", k, v, p)
			}
		}
		if a.NumParts() != k {
			t.Fatalf("k=%d: only %d parts used", k, a.NumParts())
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	g := testGraph(2)
	for _, k := range []int{2, 4, 8} {
		a, err := Partition(g, k, Options{Imbalance: 0.05, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		q := Evaluate(g, a)
		// Allow some slack beyond the constraint because boundary FM is
		// heuristic, but gross imbalance indicates a bug.
		if q.Balance > 1.30 {
			t.Fatalf("k=%d: balance %.3f too high (sizes %v)", k, q.Balance, q.PartSizes)
		}
	}
}

func TestPartitionBeatsHash(t *testing.T) {
	g := testGraph(3)
	k := 4
	a, err := Partition(g, k, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	qMin := Evaluate(g, a)
	qHash := Evaluate(g, HashPartition(g.NumNodes, k))
	if qMin.EdgeCut >= qHash.EdgeCut {
		t.Fatalf("min-cut (%d) should beat hash (%d)", qMin.EdgeCut, qHash.EdgeCut)
	}
	// A community-free R-MAT graph still admits substantial improvement.
	if float64(qMin.EdgeCut) > 0.95*float64(qHash.EdgeCut) {
		t.Fatalf("min-cut %d barely beats hash %d", qMin.EdgeCut, qHash.EdgeCut)
	}
}

func TestPartitionOnClusteredGraph(t *testing.T) {
	// Two dense clusters joined by a single bridge: the partitioner must
	// find the obvious cut.
	var edges []graph.Edge
	n := 60
	for c := 0; c < 2; c++ {
		base := graph.NodeID(c * n / 2)
		for i := 0; i < n/2; i++ {
			for j := i + 1; j < n/2; j++ {
				if (i+j)%3 == 0 { // sparse-ish clique
					edges = append(edges,
						graph.Edge{Src: base + graph.NodeID(i), Dst: base + graph.NodeID(j), Weight: 1},
						graph.Edge{Src: base + graph.NodeID(j), Dst: base + graph.NodeID(i), Weight: 1})
				}
			}
		}
	}
	edges = append(edges,
		graph.Edge{Src: 0, Dst: graph.NodeID(n / 2), Weight: 1},
		graph.Edge{Src: graph.NodeID(n / 2), Dst: 0, Weight: 1})
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Partition(g, 2, Options{Seed: 5, CoarsenTo: 16})
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(g, a)
	// Ideal cut = 2 directed edges (the bridge). Accept a small multiple.
	if q.EdgeCut > 8 {
		t.Fatalf("clustered graph cut = %d, want <= 8 (sizes %v)", q.EdgeCut, q.PartSizes)
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	g := testGraph(4)
	if _, err := Partition(g, 0, Options{}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Partition(g, g.NumNodes+1, Options{}); err == nil {
		t.Fatal("k>n should error")
	}
	a, err := Partition(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range a {
		if p != 0 {
			t.Fatal("k=1 must assign everything to part 0")
		}
	}
	empty := &graph.Graph{NumNodes: 0, Indptr: []int64{0}}
	if a, err := Partition(empty, 3, Options{}); err != nil || len(a) != 0 {
		t.Fatalf("empty graph: %v %v", a, err)
	}
}

func TestPartitionStarGraph(t *testing.T) {
	// Star graphs defeat matching (hub can match only once); the
	// partitioner must still terminate and balance.
	g := graph.Star(1001)
	a, err := Partition(g, 4, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(g, a)
	if q.Balance > 1.5 {
		t.Fatalf("star balance %.2f (sizes %v)", q.Balance, q.PartSizes)
	}
}

func TestPartitionDeterministicForSeed(t *testing.T) {
	g := testGraph(5)
	a1, _ := Partition(g, 4, Options{Seed: 9})
	a2, _ := Partition(g, 4, Options{Seed: 9})
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("partition not deterministic for fixed seed")
		}
	}
}

func TestHashPartition(t *testing.T) {
	a := HashPartition(10, 3)
	if len(a) != 10 {
		t.Fatal("length")
	}
	for v, p := range a {
		if p != int32(v%3) {
			t.Fatalf("node %d -> %d", v, p)
		}
	}
}

func TestLDGPartition(t *testing.T) {
	g := testGraph(6)
	k := 4
	a := LDGPartition(g, k, 0.05)
	for _, p := range a {
		if p < 0 || int(p) >= k {
			t.Fatalf("invalid part %d", p)
		}
	}
	qLDG := Evaluate(g, a)
	qHash := Evaluate(g, HashPartition(g.NumNodes, k))
	if qLDG.EdgeCut >= qHash.EdgeCut {
		t.Fatalf("LDG (%d) should beat hash (%d)", qLDG.EdgeCut, qHash.EdgeCut)
	}
	if qLDG.Balance > 1.5 {
		t.Fatalf("LDG balance %.2f", qLDG.Balance)
	}
}

func TestEvaluateKnownCut(t *testing.T) {
	// 4-cycle split into {0,1} and {2,3}: cut = 4 directed edges
	// (1<->2 and 3<->0).
	g := graph.MakeUndirected(graph.Ring(4))
	q := Evaluate(g, Assignment{0, 0, 1, 1})
	if q.EdgeCut != 4 {
		t.Fatalf("EdgeCut = %d, want 4", q.EdgeCut)
	}
	if q.Balance != 1.0 {
		t.Fatalf("Balance = %v, want 1", q.Balance)
	}
	if q.CutRatio != 0.5 {
		t.Fatalf("CutRatio = %v, want 0.5", q.CutRatio)
	}
}

// Property: every valid input yields a complete in-range assignment, and cut
// is symmetric (counted once per direction, so always even on undirected
// graphs).
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150) + 20
		m := int64(rng.Intn(600) + 20)
		k := int(kRaw%4) + 2
		if k > n {
			k = n
		}
		g := graph.MakeUndirected(graph.ErdosRenyi(n, m, seed))
		a, err := Partition(g, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		if len(a) != n {
			return false
		}
		for _, p := range a {
			if p < 0 || int(p) >= k {
				return false
			}
		}
		q := Evaluate(g, a)
		return q.EdgeCut%2 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionKEqualsN(t *testing.T) {
	g := graph.MakeUndirected(graph.Ring(8))
	a, err := Partition(g, 8, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]int{}
	for _, p := range a {
		seen[p]++
	}
	// Every part must be non-empty (8 nodes, 8 parts).
	if len(seen) != 8 {
		t.Fatalf("only %d parts populated: %v", len(seen), seen)
	}
}

func TestPartitionDisconnectedGraph(t *testing.T) {
	// Two disjoint rings: the partitioner must handle multiple components.
	var edges []graph.Edge
	for i := 0; i < 10; i++ {
		edges = append(edges, graph.Edge{Src: graph.NodeID(i), Dst: graph.NodeID((i + 1) % 10), Weight: 1})
		edges = append(edges, graph.Edge{Src: graph.NodeID(10 + i), Dst: graph.NodeID(10 + (i+1)%10), Weight: 1})
	}
	g, _ := graph.FromEdges(20, edges)
	g = graph.MakeUndirected(g)
	a, err := Partition(g, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(g, a)
	// Ideal: one ring per part, zero cut.
	if q.EdgeCut > 8 {
		t.Fatalf("disconnected graph cut = %d", q.EdgeCut)
	}
}
