module pprengine

go 1.22
