// Root-level benchmarks: one testing.B benchmark per table/figure of the
// paper's evaluation section, each delegating to the shared experiment
// implementations in internal/experiments. Reported custom metrics carry
// the experiment's headline numbers (throughput, speedups, precision) so
// `go test -bench=. -benchmem` regenerates the whole evaluation.
//
// Benchmarks run at a reduced dataset scale (BENCH_SCALE, default 16) so
// the suite completes in minutes; run cmd/pprbench -scale 1 for the full
// stand-in sizes.
package main

import (
	"context"
	"os"
	"strconv"
	"testing"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/experiments"
	"pprengine/internal/gnn"
	"pprengine/internal/graph"
	"pprengine/internal/rpc"
)

func benchParams() experiments.Params {
	p := experiments.DefaultParams()
	p.Scale = 16
	if s := os.Getenv("BENCH_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			p.Scale = v
		}
	}
	p.Warmup = 0
	p.Repeats = 1
	p.Queries = 8
	return p
}

// BenchmarkTable1Datasets regenerates the dataset statistics (Table 1).
func BenchmarkTable1Datasets(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		_, rows := experiments.Table1(p)
		if len(rows) != 4 {
			b.Fatal("missing datasets")
		}
		b.ReportMetric(float64(rows[len(rows)-1].DMax), "dmax_largest")
	}
}

// BenchmarkTable2Throughput regenerates the headline throughput comparison
// (Table 2): DGL SpMM vs PyTorch Tensor vs PPR Engine.
func BenchmarkTable2Throughput(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Table2(p)
		if err != nil {
			b.Fatal(err)
		}
		// Report the products row like the paper's headline.
		b.ReportMetric(rows[0].PPREngine, "engine_qps")
		b.ReportMetric(rows[0].PyTorchTensor, "tensor_qps")
		b.ReportMetric(rows[0].PPREngine/rows[0].PyTorchTensor, "speedup_x")
	}
}

// BenchmarkAggThroughput measures cross-query RPC fetch aggregation: the
// same concurrent query batch with aggregation off and on, reporting the
// wire-request reduction factor and the aggregated pass's throughput.
func BenchmarkAggThroughput(b *testing.B) {
	p := benchParams()
	p.Queries = 16
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.AggBench(p, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 || rows[1].RequestsSent == 0 {
			b.Fatal("aggregated pass sent no requests")
		}
		b.ReportMetric(float64(rows[0].RequestsSent)/float64(rows[1].RequestsSent), "req_reduction_x")
		b.ReportMetric(float64(rows[1].SharedFetches), "shared_fetches")
		b.ReportMetric(rows[1].Throughput, "agg_qps")
	}
}

// BenchmarkAccuracyTop100 regenerates the §4.2 accuracy claim.
func BenchmarkAccuracyTop100(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Accuracy(p, 3)
		if err != nil {
			b.Fatal(err)
		}
		minPrec := 1.0
		for _, r := range rows {
			if r.Top100 < minPrec {
				minPrec = r.Top100
			}
		}
		b.ReportMetric(minPrec, "min_top100_precision")
	}
}

// BenchmarkFig5aMachines regenerates the machine-scalability curve
// (Figure 5a).
func BenchmarkFig5aMachines(b *testing.B) {
	p := benchParams()
	p.Queries = 4
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig5a(p)
		if err != nil {
			b.Fatal(err)
		}
		// Speedup of 8 machines over 2 on the first dataset.
		b.ReportMetric(rows[2].Throughput/rows[0].Throughput, "speedup_8v2_x")
		b.ReportMetric(rows[2].RemoteFrac, "remote_frac_8")
	}
}

// BenchmarkFig5bProcs regenerates the inter-SSPPR parallelism study
// (Figure 5b).
func BenchmarkFig5bProcs(b *testing.B) {
	p := benchParams()
	p.Queries = 8
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig5b(p)
		if err != nil {
			b.Fatal(err)
		}
		// Strong-scaling time ratio procs=1 / procs=8 on the first dataset.
		var t1, t8 float64
		for _, r := range rows {
			if r.Dataset == rows[0].Dataset && !r.Weak {
				if r.Procs == 1 {
					t1 = r.Seconds
				}
				if r.Procs == 8 {
					t8 = r.Seconds
				}
			}
		}
		if t8 > 0 {
			b.ReportMetric(t1/t8, "strong_speedup_8_x")
		}
	}
}

// BenchmarkTable3Ablation regenerates the RPC optimization ladder (Table 3).
func BenchmarkTable3Ablation(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Table3(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].Speedup, "batch_speedup_x")
		b.ReportMetric(rows[2].Speedup, "compress_speedup_x")
		b.ReportMetric(rows[3].Speedup, "overlap_speedup_x")
	}
}

// BenchmarkFig6Breakdown regenerates the runtime breakdown comparison
// (Figure 6).
func BenchmarkFig6Breakdown(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig6(p)
		if err != nil {
			b.Fatal(err)
		}
		// Tensor push time over engine push time on the first dataset
		// (the paper reports 5-16x).
		tensorPush := rows[0].Push.Seconds()
		enginePush := rows[1].Push.Seconds()
		if enginePush > 0 {
			b.ReportMetric(tensorPush/enginePush, "push_speedup_x")
		}
	}
}

// BenchmarkFig7GNNEpoch regenerates the GNN training case study (Figure 7):
// one epoch of distributed ShaDow-SAGE with PPR subgraph construction.
func BenchmarkFig7GNNEpoch(b *testing.B) {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 2000, NumEdges: 14000, A: 0.5, B: 0.22, C: 0.22, Seed: 21,
	}))
	c, err := cluster.New(g, cluster.Options{NumMachines: 2, ProcsPerMachine: 1, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	cfg := gnn.DefaultTrainConfig()
	cfg.Epochs = 1
	cfg.BatchesPerEpc = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, _, err := gnn.TrainDistributed(context.Background(), c, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(stats[0].MeanLoss), "epoch_loss")
	}
}

// BenchmarkIntroSpeedups regenerates the introduction's products-sim
// comparison (1.7x RW / 83x FP in the paper).
func BenchmarkIntroSpeedups(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Intro(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].EngineSpeedup, "fp_speedup_x")
		b.ReportMetric(rows[1].EngineSpeedup, "rw_speedup_x")
	}
}

// BenchmarkPartitionQuality regenerates the partitioner ablation
// (DESIGN.md §5).
func BenchmarkPartitionQuality(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.PartQuality(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].RemoteFrac, "mincut_remote_frac")
		b.ReportMetric(rows[2].RemoteFrac, "hash_remote_frac")
	}
}

// BenchmarkSSPPRSingleQuery measures one engine query end to end on a
// mid-size deployment — the per-query latency behind all throughput tables.
func BenchmarkSSPPRSingleQuery(b *testing.B) {
	p := benchParams()
	spec, err := p.Spec("products-sim")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.GenerateCached()
	c, err := cluster.New(g, cluster.Options{NumMachines: 4, ProcsPerMachine: 1, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	cfg := core.DefaultConfig()
	st := c.Storages[0][0]
	n := int32(c.Shards[0].NumCore())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.RunSSPPR(context.Background(), st, int32(i)%n, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPushThreshold ablates the multi-threaded push threshold (§3.3's
// "simple strategy").
func BenchmarkPushThreshold(b *testing.B) {
	p := benchParams()
	spec, err := p.Spec("twitter-sim")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.GenerateCached()
	c, err := cluster.New(g, cluster.Options{NumMachines: 2, ProcsPerMachine: 1, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	st := c.Storages[0][0]
	n := int32(c.Shards[0].NumCore())
	for _, threshold := range []int{1, 64, 1 << 20} {
		name := map[int]string{1: "always-mt", 64: "threshold-64", 1 << 20: "never-mt"}[threshold]
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.PushThreshold = threshold
			cfg.PushWorkers = 4
			for i := 0; i < b.N; i++ {
				if _, _, err := core.RunSSPPR(context.Background(), st, int32(i)%n, cfg, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPmapVariants ablates the push locking scheme: owner-compute
// (lock-eliminated) vs per-submap locking.
func BenchmarkPmapVariants(b *testing.B) {
	p := benchParams()
	spec, err := p.Spec("friendster-sim")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.GenerateCached()
	c, err := cluster.New(g, cluster.Options{NumMachines: 2, ProcsPerMachine: 1, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	st := c.Storages[0][0]
	n := int32(c.Shards[0].NumCore())
	for _, locked := range []bool{false, true} {
		name := "owner-compute"
		if locked {
			name = "locked"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.LockedPush = locked
			cfg.PushThreshold = 1
			cfg.PushWorkers = 4
			for i := 0; i < b.N; i++ {
				if _, _, err := core.RunSSPPR(context.Background(), st, int32(i)%n, cfg, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRandomWalk measures the distributed Random Walk primitive
// (16-step walks, one batch per machine).
func BenchmarkRandomWalk(b *testing.B) {
	p := benchParams()
	spec, err := p.Spec("products-sim")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.GenerateCached()
	c, err := cluster.New(g, cluster.Options{NumMachines: 2, ProcsPerMachine: 1, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := c.RunRandomWalkBatch(context.Background(), 32, 16, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Throughput, "walks_per_sec")
	}
}

// BenchmarkKHopSample measures GraphSAGE-style fanout sampling through the
// distributed storage.
func BenchmarkKHopSample(b *testing.B) {
	p := benchParams()
	spec, err := p.Spec("products-sim")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.GenerateCached()
	c, err := cluster.New(g, cluster.Options{NumMachines: 2, ProcsPerMachine: 1, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	st := c.Storages[0][0]
	roots := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunKHopSample(context.Background(), st, roots, []int{10, 10}, int64(i), nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Nodes)), "sampled_nodes")
	}
}

// BenchmarkHaloCache compares SSPPR with and without halo-row caching.
func BenchmarkHaloCache(b *testing.B) {
	p := benchParams()
	spec, err := p.Spec("twitter-sim")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.GenerateCached()
	for _, halo := range []bool{false, true} {
		name := "cols-only"
		if halo {
			name = "halo-rows"
		}
		b.Run(name, func(b *testing.B) {
			c, err := cluster.New(g, cluster.Options{
				NumMachines: 2, ProcsPerMachine: 1, Seed: 3, CacheHaloRows: halo,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			st := c.Storages[0][0]
			n := int32(c.Shards[0].NumCore())
			cfg := core.DefaultConfig()
			b.ResetTimer()
			var remote, haloRows int64
			for i := 0; i < b.N; i++ {
				_, stats, err := core.RunSSPPR(context.Background(), st, int32(i)%n, cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				remote += stats.RemoteRows
				haloRows += stats.HaloRows
			}
			b.ReportMetric(float64(remote)/float64(b.N), "remote_rows")
			b.ReportMetric(float64(haloRows)/float64(b.N), "halo_rows")
		})
	}
}

// BenchmarkQueryService measures end-to-end owner-compute query dispatch
// (thin client -> owner server -> distributed SSPPR -> ranked response).
func BenchmarkQueryService(b *testing.B) {
	p := benchParams()
	spec, err := p.Spec("products-sim")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.GenerateCached()
	c, err := cluster.New(g, cluster.Options{NumMachines: 2, ProcsPerMachine: 1, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for i, srv := range c.Servers {
		if err := srv.EnableQueryService(c.Storages[i][0], core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
	thin := make([]*rpc.Client, 2)
	for i, addr := range c.Addrs {
		cl, err := rpc.Dial(addr, rpc.LatencyModel{})
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		thin[i] = cl
	}
	qc := core.NewQueryClient(thin, c.Locator.Locate)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := c.Shards[i%2].CoreGlobal[i%c.Shards[i%2].NumCore()]
		if _, err := qc.Query(context.Background(), src, 10, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}
